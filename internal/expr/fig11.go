package expr

import (
	"fmt"

	"kcore/internal/gen"
	"kcore/internal/memgraph"
)

// scaleFractions returns the sampling sweep (the paper uses 20%..100%).
func (c *Config) scaleFractions() []float64 {
	if c.Quick {
		return []float64{0.2, 0.6, 1.0}
	}
	return []float64{0.2, 0.4, 0.6, 0.8, 1.0}
}

// scaleDatasets returns the graphs used for the scalability study
// (Twitter and UK in the paper).
func (c *Config) scaleDatasets() []string {
	if c.Quick {
		return []string{"twitter-sim"}
	}
	return []string{"twitter-sim", "uk-sim"}
}

// Fig11 regenerates Fig. 11: decomposition scalability. For each base
// graph it samples |V| (induced subgraph) and |E| (incident nodes kept)
// from 20% to 100% and times the three semi-external algorithms on disk.
func Fig11(cfg *Config) error {
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return err
	}
	defer cleanup()
	out := cfg.out()
	for _, name := range cfg.scaleDatasets() {
		d, err := gen.ByName(name)
		if err != nil {
			return err
		}
		full := d.Graph()
		for _, mode := range []string{"V", "E"} {
			t := newTable(out, fmt.Sprintf("Fig. 11: vary |%s| (%s)", mode, name))
			t.row("fraction", "|V|", "|E|", "SemiCore*", "SemiCore+", "SemiCore")
			for _, frac := range cfg.scaleFractions() {
				sub, err := sampleGraph(full, mode, frac)
				if err != nil {
					return err
				}
				base, err := materialiseCSR(dir, fmt.Sprintf("%s-%s-%02.0f", name, mode, frac*100), sub)
				if err != nil {
					return err
				}
				var cells []interface{}
				cells = append(cells, fmt.Sprintf("%.0f%%", frac*100),
					fmtCount(int64(sub.NumNodes())), fmtCount(sub.NumEdges()))
				var recs []record
				for _, v := range []semiVariant{variantStar, variantPlus, variantBasic} {
					r, err := cfg.runSemiDisk(v, base)
					if err != nil {
						return err
					}
					recs = append(recs, r)
					cells = append(cells, fmtDur(r.Time))
				}
				if err := checkAgreement(recs); err != nil {
					return err
				}
				t.row(cells...)
			}
			t.flush()
		}
	}
	fmt.Fprintln(out, "expected shape: time grows with both sweeps; the SemiCore*:SemiCore gap widens as |E| grows.")
	return nil
}

// sampleGraph dispatches the paper's two sampling modes.
func sampleGraph(g *memgraph.CSR, mode string, frac float64) (*memgraph.CSR, error) {
	if frac >= 1.0 {
		return g, nil
	}
	if mode == "V" {
		return memgraph.SampleNodes(g, frac, 2016)
	}
	return memgraph.SampleEdges(g, frac, 2016)
}
