package expr

import (
	"fmt"
	"time"

	"kcore/internal/dyngraph"
	"kcore/internal/gen"
	"kcore/internal/imcore"
	"kcore/internal/maintain"
	"kcore/internal/memgraph"
)

// maintRecord aggregates per-operation averages for one algorithm.
type maintRecord struct {
	Algo    string
	AvgTime time.Duration
	AvgIO   float64
	AvgComp float64
	Ops     int
}

// Fig10Small regenerates Fig. 10 (a), (c): core maintenance on the small
// graphs. Following the paper's protocol, a fixed set of random existing
// edges is deleted one by one (averaging SemiDelete*), then re-inserted
// one by one (averaging SemiInsert and SemiInsert*); the in-memory
// streaming baselines IMInsert/IMDelete run the same sequence.
func Fig10Small(cfg *Config) error {
	return fig10(cfg, gen.Small, true)
}

// Fig10Big regenerates Fig. 10 (b), (d): the big graphs, semi-external
// algorithms only.
func Fig10Big(cfg *Config) error {
	return fig10(cfg, gen.Big, false)
}

func fig10(cfg *Config, group gen.Group, withInMemory bool) error {
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return err
	}
	defer cleanup()
	out := cfg.out()
	title := "Fig. 10 (a,c): core maintenance, small graphs"
	if group == gen.Big {
		title = "Fig. 10 (b,d): core maintenance, big graphs"
	}
	t := newTable(out, title)
	t.row("dataset", "algorithm", "avg time", "avg I/O", "avg node comps")
	k := cfg.maintenanceEdges()
	for _, d := range cfg.datasets(group) {
		base, csr, err := materialise(dir, d)
		if err != nil {
			return err
		}
		edges := pickEdges(csr, k, 1000+int64(len(d.Name)))
		recs, err := cfg.maintenanceRun(base, edges)
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		if withInMemory {
			recs = append(recs, inMemoryMaintenance(csr, edges)...)
		}
		for _, r := range recs {
			t.row(d.Name, r.Algo, fmtDur(r.AvgTime), fmt.Sprintf("%.1f", r.AvgIO),
				fmt.Sprintf("%.1f", r.AvgComp))
		}
	}
	t.flush()
	fmt.Fprintln(out, "expected shape: SemiDelete* cheapest; SemiInsert* well below SemiInsert (no candidate flood).")
	return nil
}

// maintenanceRun executes the delete-then-reinsert protocol for the
// semi-external algorithms over the disk graph at base.
func (cfg *Config) maintenanceRun(base string, edges []memgraph.Edge) ([]maintRecord, error) {
	// Session A: SemiDelete* over the deletions, SemiInsert* over the
	// re-insertions.
	runStar := func() (maintRecord, maintRecord, error) {
		ctr := cfg.newCounter()
		g, err := dyngraph.Open(base, ctr, dyngraph.Options{BufferArcs: 1 << 30})
		if err != nil {
			return maintRecord{}, maintRecord{}, err
		}
		defer g.Close()
		s, err := maintain.NewSession(g, nil)
		if err != nil {
			return maintRecord{}, maintRecord{}, err
		}
		del := maintRecord{Algo: "SemiDelete*"}
		for _, e := range edges {
			before := ctr.Snapshot()
			rs, err := s.DeleteStar(e.U, e.V)
			if err != nil {
				return del, del, err
			}
			del.AvgTime += rs.Duration
			del.AvgIO += float64(ctr.Snapshot().Sub(before).Total())
			del.AvgComp += float64(rs.NodeComputations)
			del.Ops++
		}
		ins := maintRecord{Algo: "SemiInsert*"}
		for _, e := range edges {
			before := ctr.Snapshot()
			rs, err := s.InsertStar(e.U, e.V)
			if err != nil {
				return del, ins, err
			}
			ins.AvgTime += rs.Duration
			ins.AvgIO += float64(ctr.Snapshot().Sub(before).Total())
			ins.AvgComp += float64(rs.NodeComputations)
			ins.Ops++
		}
		return del, ins, nil
	}
	// Session B: the two-phase SemiInsert over the same re-insertions
	// (deletions unrecorded, just to reach the same start state).
	runTwoPhase := func() (maintRecord, error) {
		ctr := cfg.newCounter()
		g, err := dyngraph.Open(base, ctr, dyngraph.Options{BufferArcs: 1 << 30})
		if err != nil {
			return maintRecord{}, err
		}
		defer g.Close()
		s, err := maintain.NewSession(g, nil)
		if err != nil {
			return maintRecord{}, err
		}
		for _, e := range edges {
			if _, err := s.DeleteStar(e.U, e.V); err != nil {
				return maintRecord{}, err
			}
		}
		ins := maintRecord{Algo: "SemiInsert"}
		for _, e := range edges {
			before := ctr.Snapshot()
			rs, err := s.InsertTwoPhase(e.U, e.V)
			if err != nil {
				return ins, err
			}
			ins.AvgTime += rs.Duration
			ins.AvgIO += float64(ctr.Snapshot().Sub(before).Total())
			ins.AvgComp += float64(rs.NodeComputations)
			ins.Ops++
		}
		return ins, nil
	}

	del, insStar, err := runStar()
	if err != nil {
		return nil, err
	}
	ins2, err := runTwoPhase()
	if err != nil {
		return nil, err
	}
	recs := []maintRecord{ins2, insStar, del}
	for i := range recs {
		if recs[i].Ops > 0 {
			recs[i].AvgTime /= time.Duration(recs[i].Ops)
			recs[i].AvgIO /= float64(recs[i].Ops)
			recs[i].AvgComp /= float64(recs[i].Ops)
		}
	}
	return recs, nil
}

// inMemoryMaintenance runs IMDelete/IMInsert over the same edge sequence.
func inMemoryMaintenance(csr *memgraph.CSR, edges []memgraph.Edge) []maintRecord {
	m := imcore.NewMaintainer(imcore.NewDynGraph(csr))
	del := maintRecord{Algo: "IMDelete"}
	for _, e := range edges {
		st, err := m.Delete(e.U, e.V)
		if err != nil {
			continue
		}
		del.AvgTime += st.Duration
		del.AvgComp += float64(st.Visited)
		del.Ops++
	}
	ins := maintRecord{Algo: "IMInsert"}
	for _, e := range edges {
		st, err := m.Insert(e.U, e.V)
		if err != nil {
			continue
		}
		ins.AvgTime += st.Duration
		ins.AvgComp += float64(st.Visited)
		ins.Ops++
	}
	for _, r := range []*maintRecord{&del, &ins} {
		if r.Ops > 0 {
			r.AvgTime /= time.Duration(r.Ops)
			r.AvgComp /= float64(r.Ops)
		}
	}
	return []maintRecord{ins, del}
}
