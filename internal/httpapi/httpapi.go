// Package httpapi is the HTTP/JSON layer of the serving stack. It turns
// an engine.Registry into an http.Handler, keeping all request parsing,
// routing and encoding out of both the engines and cmd/kcored (which
// shrinks to flag parsing + wiring).
//
// Routes:
//
//	GET    /healthz                     liveness + per-graph epochs
//	GET    /graphs                      list registered graphs
//	POST   /graphs                      open a graph: {"name":..,"path":..,"shards":N,"partitioner":"ldg"}
//	DELETE /graphs/{name}               drain and drop a graph
//	GET    /g/{name}/core?v=7           core number of node 7
//	GET    /g/{name}/kcore?k=3&limit=9  k-core members (memoized per epoch)
//	GET    /g/{name}/degeneracy         kmax and k-core size profile
//	GET    /g/{name}/stats              serving + I/O counters (+ per-shard block when sharded)
//	POST   /g/{name}/update[?wait=1]    {"updates":[{"op":"insert","u":1,"v":2},..]}
//	POST   /g/{name}/rebalance          locality-aware repartition (sharded graphs only)
//	POST   /g/{name}/checkpoint         force a durability checkpoint (data-dir mode only)
//
// The single-graph routes from before the registry existed (/core,
// /kcore, /degeneracy, /stats, /update) are kept as aliases for a
// designated default graph: same paths, parameters, status codes and
// response shapes. One deliberate behaviour change: /kcore lists nodes
// core-descending (the memoized bucket order) instead of id-ascending,
// so a limit keeps the most deeply embedded members.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"kcore/internal/engine"
	"kcore/internal/serve"
	"kcore/internal/shard"
)

// Server routes requests to engines resolved by graph name through a
// Registry. Build one with New.
type Server struct {
	reg *engine.Registry
	def string // graph name the legacy single-graph routes resolve to
	mux *http.ServeMux
}

// New builds the API handler over reg. defaultGraph names the graph the
// legacy single-graph routes serve; it does not need to exist yet (the
// aliases 404 until it is registered).
func New(reg *engine.Registry, defaultGraph string) *Server {
	s := &Server{reg: reg, def: defaultGraph, mux: http.NewServeMux()}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /graphs", s.handleCreateGraph)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.handleDropGraph)

	// Per-graph routes and their single-graph aliases share handlers:
	// the alias path simply resolves to the default graph's engine.
	s.mux.HandleFunc("GET /g/{name}/core", s.graph(handleCore))
	s.mux.HandleFunc("GET /g/{name}/kcore", s.graph(handleKCore))
	s.mux.HandleFunc("GET /g/{name}/degeneracy", s.graph(handleDegeneracy))
	s.mux.HandleFunc("GET /g/{name}/stats", s.graph(handleStats))
	s.mux.HandleFunc("POST /g/{name}/update", s.graph(handleUpdate))
	s.mux.HandleFunc("POST /g/{name}/rebalance", s.graph(handleRebalance))
	s.mux.HandleFunc("POST /g/{name}/checkpoint", s.graph(handleCheckpoint))
	s.mux.HandleFunc("GET /core", s.graph(handleCore))
	s.mux.HandleFunc("GET /kcore", s.graph(handleKCore))
	s.mux.HandleFunc("GET /degeneracy", s.graph(handleDegeneracy))
	s.mux.HandleFunc("GET /stats", s.graph(handleStats))
	s.mux.HandleFunc("POST /update", s.graph(handleUpdate))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// graph adapts a per-engine handler to the mux: it resolves the {name}
// path value (empty on the legacy alias routes, which map to the
// default graph) and answers 404 for unknown names.
func (s *Server) graph(h func(eng engine.Engine, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			name = s.def
		}
		eng, ok := s.reg.Get(name)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown graph %q", name)
			return
		}
		h(eng, w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// uintParam parses a required uint32 query parameter.
func uintParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	x, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: not a uint32", name, raw)
	}
	return uint32(x), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness probes poll this: stick to atomic epoch loads, no
	// counter snapshots (reg.List() would build one per graph).
	epochs := make(map[string]uint64)
	for _, name := range s.reg.Names() {
		if eng, ok := s.reg.Get(name); ok {
			epochs[name] = eng.Snapshot().Seq
		}
	}
	resp := map[string]any{"status": "ok", "graphs": epochs}
	// Pre-registry shape: surface the default graph's epoch when present.
	if seq, ok := epochs[s.def]; ok {
		resp["epoch"] = seq
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(infos),
		"default": s.def,
		"graphs":  infos,
	})
}

// createGraphRequest is the body of POST /graphs. Shards >= 2 opens the
// graph behind a sharded multi-writer engine (internal/shard); 0 or 1
// selects the plain single-writer engine. Partitioner selects the
// node-assignment strategy for sharded opens: "hash" (default), "range",
// or "ldg" (locality-aware streaming assignment).
type createGraphRequest struct {
	Name        string `json:"name"`
	Path        string `json:"path"`
	Shards      int    `json:"shards,omitempty"`
	Partitioner string `json:"partitioner,omitempty"`
}

func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	var req createGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		httpError(w, http.StatusBadRequest, "name and path are required")
		return
	}
	if req.Shards < 0 {
		httpError(w, http.StatusBadRequest, "shards must be >= 0, got %d", req.Shards)
		return
	}
	switch req.Partitioner {
	case "", shard.PartitionerHash, shard.PartitionerRange, shard.PartitionerLDG:
	default:
		httpError(w, http.StatusBadRequest, "unknown partitioner %q (want %s, %s or %s)",
			req.Partitioner, shard.PartitionerHash, shard.PartitionerRange, shard.PartitionerLDG)
		return
	}
	eng, err := s.reg.OpenSharded(req.Name, req.Path, req.Shards, req.Partitioner)
	switch {
	case err == nil:
	case errors.Is(err, engine.ErrExists):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, engine.ErrBadName):
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		// Open/decompose failures (missing files, bad format, ...).
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	snap := eng.Snapshot()
	resp := map[string]any{
		"name":  req.Name,
		"nodes": snap.NumNodes(),
		"edges": snap.NumEdges,
		"kmax":  snap.Kmax,
		"epoch": snap.Seq,
	}
	if req.Shards >= 2 {
		resp["shards"] = req.Shards
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleDropGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Drop(name); err != nil {
		if errors.Is(err, engine.ErrNotFound) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

func handleCore(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	v, err := uintParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := eng.Snapshot()
	c, err := snap.CoreOf(v)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": v, "core": c, "epoch": snap.Seq})
}

func handleKCore(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	k, err := uintParam(r, "k")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit=%q", raw)
			return
		}
	}
	snap := eng.Snapshot()
	// Memoized path: first query per epoch computes the buckets, later
	// ones (any k) reuse them. The slice is shared with the epoch, so
	// only read from it; limiting takes a subslice, never a mutation.
	nodes := snap.KCoreAt(k)
	count := len(nodes)
	if limit > 0 && count > limit {
		nodes = nodes[:limit]
	}
	if nodes == nil {
		nodes = []uint32{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"k": k, "count": count, "nodes": nodes, "epoch": snap.Seq,
	})
}

func handleDegeneracy(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	snap := eng.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"degeneracy": snap.Kmax,
		"nodes":      snap.NumNodes(),
		"edges":      snap.NumEdges,
		"core_sizes": snap.Profile(),
		"epoch":      snap.Seq,
	})
}

func handleStats(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	snap := eng.Snapshot()
	resp := map[string]any{
		"serve":   eng.Stats(),
		"io":      eng.IOStats(),
		"epoch":   snap.Seq,
		"applied": snap.Applied,
		"nodes":   snap.NumNodes(),
		"edges":   snap.NumEdges,
	}
	// Sharded engines additionally expose routing/compose counters, the
	// cross-shard edge ratio, and one counter block per shard writer.
	if ss, ok := engine.AsShardStatser(eng); ok {
		shardStats := ss.ShardStats()
		resp["shards"] = shardStats
		resp["cross_shard_edge_ratio"] = shardStats.Routing.CrossShardEdgeRatio()
	}
	// Durable graphs expose WAL/checkpoint/recovery counters and the
	// degraded read-only flag.
	if ds, ok := engine.AsDurabilityStatser(eng); ok {
		w := ds.DurabilityStats()
		resp["durability"] = w
		resp["degraded"] = w.Degraded
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint forces a checkpoint of a durable graph; 400 for
// graphs opened without a data dir, 503 when the graph is degraded or
// the checkpoint fails.
func handleCheckpoint(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	cp, ok := engine.AsCheckpointer(eng)
	if !ok {
		httpError(w, http.StatusBadRequest, "graph is not durable: no checkpoint to take")
		return
	}
	if err := cp.Checkpoint(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	var snap any
	if ds, ok := engine.AsDurabilityStatser(eng); ok {
		snap = ds.DurabilityStats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpointed": true,
		"durability":   snap,
		"epoch":        eng.Snapshot().Seq,
	})
}

// handleRebalance runs the locality-aware repartitioning of a sharded
// engine: nodes are reassigned by the LDG/label-propagation partitioner
// over the graph as served right now, and every edge whose owner changed
// migrates between sessions through the normal update path. Responds
// with the migration report (moved nodes, migrated edges, cut ratio
// before/after); 400 for engines that are not sharded.
func handleRebalance(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	rb, ok := engine.AsRebalancer(eng)
	if !ok {
		httpError(w, http.StatusBadRequest, "graph is not sharded: nothing to rebalance")
		return
	}
	rep, err := rb.Rebalance()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"moved_nodes":                   rep.MovedNodes,
		"migrated_edges":                rep.MigratedEdges,
		"cut_edges_before":              rep.CutEdgesBefore,
		"cut_edges_after":               rep.CutEdgesAfter,
		"total_edges":                   rep.TotalEdges,
		"cross_shard_edge_ratio_before": rep.CrossShardEdgeRatioBefore(),
		"cross_shard_edge_ratio_after":  rep.CrossShardEdgeRatioAfter(),
		"epoch":                         eng.Snapshot().Seq,
	})
}

// updateRequest is the body of POST /update.
type updateRequest struct {
	Updates []updateJSON `json:"updates"`
}

type updateJSON struct {
	Op string `json:"op"`
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
}

func handleUpdate(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	ups := make([]serve.Update, len(req.Updates))
	for i, u := range req.Updates {
		switch u.Op {
		case "insert":
			ups[i] = serve.Update{Op: serve.OpInsert, U: u.U, V: u.V}
		case "delete":
			ups[i] = serve.Update{Op: serve.OpDelete, U: u.U, V: u.V}
		default:
			httpError(w, http.StatusBadRequest, "bad op %q (want insert or delete)", u.Op)
			return
		}
	}
	wait := r.URL.Query().Get("wait") != ""
	var err error
	if wait {
		err = eng.Apply(ups...)
	} else {
		err = eng.Enqueue(ups...)
	}
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	status := http.StatusAccepted
	if wait {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"enqueued": len(ups),
		"waited":   wait,
		"epoch":    eng.Snapshot().Seq,
	})
}
