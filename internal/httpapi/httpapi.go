// Package httpapi is the HTTP/JSON layer of the serving stack. It turns
// an engine.Registry into an http.Handler, keeping all request parsing,
// routing and encoding out of both the engines and cmd/kcored (which
// shrinks to flag parsing + wiring).
//
// Routes:
//
//	GET    /healthz                     liveness + per-graph epochs
//	GET    /graphs                      list registered graphs
//	POST   /graphs                      open a graph: {"name":..,"path":..,"shards":N,"partitioner":"ldg"}
//	DELETE /graphs/{name}               drain and drop a graph
//	GET    /g/{name}/core?v=7           core number of node 7
//	GET    /g/{name}/kcore?k=3&limit=9  k-core members (memoized per epoch)
//	GET    /g/{name}/degeneracy         kmax and k-core size profile
//	GET    /g/{name}/stats              serving + I/O counters (+ per-shard block when sharded)
//	POST   /g/{name}/update[?wait=1]    {"updates":[{"op":"insert","u":1,"v":2},..]}
//	POST   /g/{name}/rebalance          locality-aware repartition (sharded graphs only)
//	POST   /g/{name}/checkpoint         force a durability checkpoint (data-dir mode only)
//	GET    /g/{name}/changes?from=L     replication change stream: CRC-framed batch records
//	                                    with LSN > L plus idle heartbeats (data-dir mode only)
//	GET    /g/{name}/checkpoint         download the newest committed checkpoint as a tar
//
// Every graph read response carries an X-Kcore-Epoch header with the
// epoch it was served from, so replicas behind a load balancer can be
// compared for staleness. Writes to graphs that cannot accept them —
// replication followers and graphs recovered degraded — answer 409
// with {"error": ..., "read_only": true}.
//
// The single-graph routes from before the registry existed (/core,
// /kcore, /degeneracy, /stats, /update) are kept as aliases for a
// designated default graph: same paths, parameters, status codes and
// response shapes. One deliberate behaviour change: /kcore lists nodes
// core-descending (the memoized bucket order) instead of id-ascending,
// so a limit keeps the most deeply embedded members.
package httpapi

import (
	"archive/tar"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"kcore/internal/engine"
	"kcore/internal/serve"
	"kcore/internal/shard"
	"kcore/internal/wal"
)

// Server routes requests to engines resolved by graph name through a
// Registry. Build one with New.
type Server struct {
	reg *engine.Registry
	def string // graph name the legacy single-graph routes resolve to
	mux *http.ServeMux
}

// New builds the API handler over reg. defaultGraph names the graph the
// legacy single-graph routes serve; it does not need to exist yet (the
// aliases 404 until it is registered).
func New(reg *engine.Registry, defaultGraph string) *Server {
	s := &Server{reg: reg, def: defaultGraph, mux: http.NewServeMux()}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /graphs", s.handleCreateGraph)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.handleDropGraph)

	// Per-graph routes and their single-graph aliases share handlers:
	// the alias path simply resolves to the default graph's engine.
	s.mux.HandleFunc("GET /g/{name}/core", s.graph(handleCore))
	s.mux.HandleFunc("GET /g/{name}/kcore", s.graph(handleKCore))
	s.mux.HandleFunc("GET /g/{name}/degeneracy", s.graph(handleDegeneracy))
	s.mux.HandleFunc("GET /g/{name}/stats", s.graph(handleStats))
	s.mux.HandleFunc("POST /g/{name}/update", s.graph(handleUpdate))
	s.mux.HandleFunc("POST /g/{name}/rebalance", s.graph(handleRebalance))
	s.mux.HandleFunc("POST /g/{name}/checkpoint", s.graph(handleCheckpoint))
	s.mux.HandleFunc("GET /g/{name}/changes", s.graph(handleChanges))
	s.mux.HandleFunc("GET /g/{name}/checkpoint", s.graph(handleCheckpointFetch))
	s.mux.HandleFunc("GET /core", s.graph(handleCore))
	s.mux.HandleFunc("GET /kcore", s.graph(handleKCore))
	s.mux.HandleFunc("GET /degeneracy", s.graph(handleDegeneracy))
	s.mux.HandleFunc("GET /stats", s.graph(handleStats))
	s.mux.HandleFunc("POST /update", s.graph(handleUpdate))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// graph adapts a per-engine handler to the mux: it resolves the {name}
// path value (empty on the legacy alias routes, which map to the
// default graph) and answers 404 for unknown names.
func (s *Server) graph(h func(eng engine.Engine, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			name = s.def
		}
		eng, ok := s.reg.Get(name)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown graph %q", name)
			return
		}
		h(eng, w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// setEpochHeader tags a graph response with the epoch it was served
// from; replicas behind a load balancer surface their staleness this way.
func setEpochHeader(w http.ResponseWriter, seq uint64) {
	w.Header().Set("X-Kcore-Epoch", strconv.FormatUint(seq, 10))
}

// refuseWrite maps write-path errors on graphs that cannot accept
// writes — replication followers (engine.ErrReadOnly) and graphs
// recovered degraded (engine.ErrDegraded) — to one consistent 409 with
// a machine-readable body. It reports whether it handled the error.
func refuseWrite(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, engine.ErrReadOnly) && !errors.Is(err, engine.ErrDegraded) {
		return false
	}
	writeJSON(w, http.StatusConflict, map[string]any{
		"error":     err.Error(),
		"read_only": true,
	})
	return true
}

// degradedErrOf surfaces a durable graph's degraded read-only state as
// an error for handlers whose underlying operation would otherwise
// bypass the durable shell's write gate.
func degradedErrOf(eng engine.Engine) error {
	if ds, ok := engine.AsDurabilityStatser(eng); ok && ds.DurabilityStats().Degraded {
		return engine.ErrDegraded
	}
	return nil
}

// uintParam parses a required uint32 query parameter.
func uintParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	x, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: not a uint32", name, raw)
	}
	return uint32(x), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness probes poll this: stick to atomic epoch loads, no
	// counter snapshots (reg.List() would build one per graph).
	epochs := make(map[string]uint64)
	for _, name := range s.reg.Names() {
		if eng, ok := s.reg.Get(name); ok {
			epochs[name] = eng.Snapshot().Seq
		}
	}
	resp := map[string]any{"status": "ok", "graphs": epochs}
	// Pre-registry shape: surface the default graph's epoch when present.
	if seq, ok := epochs[s.def]; ok {
		resp["epoch"] = seq
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(infos),
		"default": s.def,
		"graphs":  infos,
	})
}

// createGraphRequest is the body of POST /graphs. Backend selects the
// serving engine: "mem" (default), "sharded" (or Shards >= 2), or
// "disk" — the beyond-RAM engine whose adjacency stays on disk behind a
// block cache of CacheBlocks frames. Partitioner selects the
// node-assignment strategy for sharded opens: "hash" (default), "range",
// or "ldg" (locality-aware streaming assignment).
type createGraphRequest struct {
	Name        string `json:"name"`
	Path        string `json:"path"`
	Backend     string `json:"backend,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	Partitioner string `json:"partitioner,omitempty"`
	CacheBlocks int    `json:"cache_blocks,omitempty"`
}

func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	var req createGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		httpError(w, http.StatusBadRequest, "name and path are required")
		return
	}
	if req.Shards < 0 {
		httpError(w, http.StatusBadRequest, "shards must be >= 0, got %d", req.Shards)
		return
	}
	switch req.Partitioner {
	case "", shard.PartitionerHash, shard.PartitionerRange, shard.PartitionerLDG:
	default:
		httpError(w, http.StatusBadRequest, "unknown partitioner %q (want %s, %s or %s)",
			req.Partitioner, shard.PartitionerHash, shard.PartitionerRange, shard.PartitionerLDG)
		return
	}
	switch req.Backend {
	case "", engine.BackendMem, engine.BackendSharded, engine.BackendDisk:
	default:
		httpError(w, http.StatusBadRequest, "unknown backend %q (want %s, %s or %s)",
			req.Backend, engine.BackendMem, engine.BackendSharded, engine.BackendDisk)
		return
	}
	if req.CacheBlocks < 0 {
		httpError(w, http.StatusBadRequest, "cache_blocks must be >= 0, got %d", req.CacheBlocks)
		return
	}
	if req.Backend == engine.BackendDisk && req.Shards >= 2 {
		httpError(w, http.StatusBadRequest, "the disk backend is single-writer (got shards=%d)", req.Shards)
		return
	}
	eng, err := s.reg.OpenBackend(req.Name, req.Path, engine.BackendConfig{
		Backend:     req.Backend,
		Shards:      req.Shards,
		Partitioner: req.Partitioner,
		CacheBlocks: req.CacheBlocks,
	})
	switch {
	case err == nil:
	case errors.Is(err, engine.ErrExists):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, engine.ErrBadName):
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		// Open/decompose failures (missing files, bad format, bad
		// backend combinations, ...).
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	snap := eng.Snapshot()
	resp := map[string]any{
		"name":  req.Name,
		"nodes": snap.NumNodes(),
		"edges": snap.NumEdges,
		"kmax":  snap.Kmax,
		"epoch": snap.Seq,
	}
	if bt, ok := engine.AsBackendTyper(eng); ok {
		resp["backend"] = bt.BackendType()
	}
	if req.Shards >= 2 {
		resp["shards"] = req.Shards
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleDropGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Drop(name); err != nil {
		if errors.Is(err, engine.ErrNotFound) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

func handleCore(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	v, err := uintParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := eng.Snapshot()
	setEpochHeader(w, snap.Seq)
	c, err := snap.CoreOf(v)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": v, "core": c, "epoch": snap.Seq})
}

func handleKCore(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	k, err := uintParam(r, "k")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit=%q", raw)
			return
		}
	}
	snap := eng.Snapshot()
	setEpochHeader(w, snap.Seq)
	// Memoized path: first query per epoch computes the buckets, later
	// ones (any k) reuse them. The slice is shared with the epoch, so
	// only read from it; limiting takes a subslice, never a mutation.
	nodes := snap.KCoreAt(k)
	count := len(nodes)
	if limit > 0 && count > limit {
		nodes = nodes[:limit]
	}
	if nodes == nil {
		nodes = []uint32{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"k": k, "count": count, "nodes": nodes, "epoch": snap.Seq,
	})
}

func handleDegeneracy(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	snap := eng.Snapshot()
	setEpochHeader(w, snap.Seq)
	writeJSON(w, http.StatusOK, map[string]any{
		"degeneracy": snap.Kmax,
		"nodes":      snap.NumNodes(),
		"edges":      snap.NumEdges,
		"core_sizes": snap.Profile(),
		"epoch":      snap.Seq,
	})
}

func handleStats(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	snap := eng.Snapshot()
	setEpochHeader(w, snap.Seq)
	resp := map[string]any{
		"serve":   eng.Stats(),
		"epoch":   snap.Seq,
		"applied": snap.Applied,
		"nodes":   snap.NumNodes(),
		"edges":   snap.NumEdges,
	}
	// The backend label says which engine kind serves this graph; the io
	// block only appears once the backend has actually measured block
	// I/O — an all-zero block would read as "measured: zero", which for
	// purely in-memory serving is not what happened.
	if bt, ok := engine.AsBackendTyper(eng); ok {
		resp["backend"] = bt.BackendType()
	}
	if io := eng.IOStats(); io.Total() != 0 || io.ReadBytes != 0 || io.WriteBytes != 0 {
		resp["io"] = io
	}
	// Disk backends expose the cache/overlay/merge economy.
	if ds, ok := engine.AsDiskStatser(eng); ok {
		resp["disk"] = ds.DiskStats()
	}
	// Sharded engines additionally expose routing/compose counters, the
	// cross-shard edge ratio, and one counter block per shard writer.
	if ss, ok := engine.AsShardStatser(eng); ok {
		shardStats := ss.ShardStats()
		resp["shards"] = shardStats
		resp["cross_shard_edge_ratio"] = shardStats.Routing.CrossShardEdgeRatio()
	}
	// Durable graphs expose WAL/checkpoint/recovery counters and the
	// degraded read-only flag.
	if ds, ok := engine.AsDurabilityStatser(eng); ok {
		w := ds.DurabilityStats()
		resp["durability"] = w
		resp["degraded"] = w.Degraded
	}
	// Replication followers expose their apply cursor, the highest
	// leader LSN observed, and stream health.
	if rs, ok := engine.AsReplicaStatser(eng); ok {
		resp["replica"] = rs.ReplicaStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint forces a checkpoint of a durable graph; 400 for
// graphs opened without a data dir, 503 when the graph is degraded or
// the checkpoint fails.
func handleCheckpoint(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	cp, ok := engine.AsCheckpointer(eng)
	if !ok {
		httpError(w, http.StatusBadRequest, "graph is not durable: no checkpoint to take")
		return
	}
	if err := cp.Checkpoint(); err != nil {
		if refuseWrite(w, err) {
			return
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	var snap any
	if ds, ok := engine.AsDurabilityStatser(eng); ok {
		snap = ds.DurabilityStats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpointed": true,
		"durability":   snap,
		"epoch":        eng.Snapshot().Seq,
	})
}

// handleRebalance runs the locality-aware repartitioning of a sharded
// engine: nodes are reassigned by the LDG/label-propagation partitioner
// over the graph as served right now, and every edge whose owner changed
// migrates between sessions through the normal update path. Responds
// with the migration report (moved nodes, migrated edges, cut ratio
// before/after); 400 for engines that are not sharded.
func handleRebalance(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	rb, ok := engine.AsRebalancer(eng)
	if !ok {
		httpError(w, http.StatusBadRequest, "graph is not sharded: nothing to rebalance")
		return
	}
	// Rebalance migrates edges through the shard sessions directly, below
	// the durable shell's write gate — check the degraded flag up front so
	// a degraded graph answers the same 409 as any other refused write.
	if err := degradedErrOf(eng); err != nil {
		refuseWrite(w, err)
		return
	}
	rep, err := rb.Rebalance()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"moved_nodes":                   rep.MovedNodes,
		"migrated_edges":                rep.MigratedEdges,
		"cut_edges_before":              rep.CutEdgesBefore,
		"cut_edges_after":               rep.CutEdgesAfter,
		"total_edges":                   rep.TotalEdges,
		"cross_shard_edge_ratio_before": rep.CrossShardEdgeRatioBefore(),
		"cross_shard_edge_ratio_after":  rep.CrossShardEdgeRatioAfter(),
		"epoch":                         eng.Snapshot().Seq,
	})
}

// changesHeartbeat is how long an idle change stream waits before
// emitting a heartbeat frame. It doubles as the handler's liveness
// bound: a stream whose client vanished is discovered by the failed
// heartbeat write within one interval.
const changesHeartbeat = 500 * time.Millisecond

// changesBatchMax caps the records pulled from the feed per write, so a
// follower resuming far behind streams in bounded chunks instead of one
// giant buffer.
const changesBatchMax = 256

// handleChanges streams the replication change feed as CRC-framed
// records (the WAL wire format) with LSN > from, then idles emitting
// heartbeats until new batches land. A cursor older than the feed's
// retention window answers 410 Gone with the oldest servable cursor —
// the follower's signal to bootstrap from a checkpoint instead.
func handleChanges(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	cs, ok := engine.AsChangeStreamer(eng)
	if !ok {
		httpError(w, http.StatusBadRequest, "graph has no change stream (opened without a data dir)")
		return
	}
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		var err error
		if from, err = strconv.ParseUint(raw, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad from=%q: not a uint64", raw)
			return
		}
	}
	feed := cs.ChangeFeed()
	// Probe the cursor before committing to a streaming response: a
	// trimmed cursor must surface as a real 410 status, which is
	// impossible once the header is out.
	var trimmed *wal.TrimmedError
	if _, err := feed.TailFrom(from, 1); errors.As(err, &trimmed) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // client gone; nothing to do
			"error":      err.Error(),
			"oldest_lsn": trimmed.Oldest,
		})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Kcore-LSN", strconv.FormatUint(cs.CurrentLSN(), 10))
	setEpochHeader(w, eng.Snapshot().Seq)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	heartbeat := time.NewTimer(changesHeartbeat)
	defer heartbeat.Stop()
	cursor := from
	var buf []byte
	for {
		// Capture the wakeup channel before tailing: an append racing an
		// empty TailFrom then cannot be missed.
		wait := feed.Wait()
		recs, err := feed.TailFrom(cursor, changesBatchMax)
		if err != nil {
			// Trimmed mid-stream (retention overtook a stalled client):
			// close the connection; the reconnect gets the 410.
			return
		}
		if len(recs) > 0 {
			buf = buf[:0]
			for _, rec := range recs {
				buf = wal.AppendRecord(buf, rec.LSN, rec.Deletes, rec.Inserts)
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			flush()
			cursor = recs[len(recs)-1].LSN
			continue
		}
		if !heartbeat.Stop() {
			select {
			case <-heartbeat.C:
			default:
			}
		}
		heartbeat.Reset(changesHeartbeat)
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		case <-heartbeat.C:
			buf = wal.AppendHeartbeat(buf[:0], cs.CurrentLSN())
			if _, err := w.Write(buf); err != nil {
				return
			}
			flush()
		}
	}
}

// handleCheckpointFetch serves the newest committed checkpoint as a tar
// archive, for follower bootstrap. The files are pinned open for the
// whole download, so concurrent checkpoint retention cannot tear it.
func handleCheckpointFetch(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	cs, ok := engine.AsChangeStreamer(eng)
	if !ok {
		httpError(w, http.StatusBadRequest, "graph is not durable: no checkpoint to download")
		return
	}
	h, err := cs.OpenCheckpoint()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer h.Close() //nolint:errcheck // read-only handles
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set("X-Kcore-Ckpt-LSN", strconv.FormatUint(h.Manifest.LSN, 10))
	w.Header().Set("X-Kcore-Ckpt-Seq", strconv.FormatUint(h.Manifest.Seq, 10))
	w.WriteHeader(http.StatusOK)
	tw := tar.NewWriter(w)
	for _, f := range h.Files {
		hdr := &tar.Header{Name: f.Name, Mode: 0o644, Size: f.Size}
		if err := tw.WriteHeader(hdr); err != nil {
			return
		}
		if _, err := io.Copy(tw, f.Reader()); err != nil {
			return
		}
	}
	tw.Close() //nolint:errcheck // client gone; nothing to do
}

// updateRequest is the body of POST /update.
type updateRequest struct {
	Updates []updateJSON `json:"updates"`
}

type updateJSON struct {
	Op string `json:"op"`
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
}

func handleUpdate(eng engine.Engine, w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	ups := make([]serve.Update, len(req.Updates))
	for i, u := range req.Updates {
		switch u.Op {
		case "insert":
			ups[i] = serve.Update{Op: serve.OpInsert, U: u.U, V: u.V}
		case "delete":
			ups[i] = serve.Update{Op: serve.OpDelete, U: u.U, V: u.V}
		default:
			httpError(w, http.StatusBadRequest, "bad op %q (want insert or delete)", u.Op)
			return
		}
	}
	wait := r.URL.Query().Get("wait") != ""
	var err error
	if wait {
		err = eng.Apply(ups...)
	} else {
		err = eng.Enqueue(ups...)
	}
	if err != nil {
		if refuseWrite(w, err) {
			return
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	status := http.StatusAccepted
	if wait {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"enqueued": len(ups),
		"waited":   wait,
		"epoch":    eng.Snapshot().Seq,
	})
}
