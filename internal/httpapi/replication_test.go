package httpapi_test

import (
	"archive/tar"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kcore"
	"kcore/internal/engine"
	"kcore/internal/httpapi"
	"kcore/internal/serve"
	"kcore/internal/shard"
	"kcore/internal/stats"
	"kcore/internal/wal"
)

// stubReadOnly wraps a real serving session but refuses writes with a
// configurable error — the shapes the write-refusal table needs
// (replication follower, degraded durable graph) without standing up
// real replication or injecting real damage.
type stubReadOnly struct {
	sess     *serve.ConcurrentSession
	g        *kcore.Graph
	writeErr error
	degraded bool
}

func newStubReadOnly(t *testing.T, writeErr error, degraded bool) *stubReadOnly {
	t.Helper()
	g, err := kcore.Open(writeGraph(t, 80, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := serve.New(g, nil)
	if err != nil {
		g.Close()
		t.Fatal(err)
	}
	return &stubReadOnly{sess: sess, g: g, writeErr: writeErr, degraded: degraded}
}

func (s *stubReadOnly) Snapshot() *serve.Epoch              { return s.sess.Snapshot() }
func (s *stubReadOnly) Enqueue(ups ...serve.Update) error   { return s.writeErr }
func (s *stubReadOnly) Apply(ups ...serve.Update) error     { return s.writeErr }
func (s *stubReadOnly) Sync() error                         { return s.sess.Sync() }
func (s *stubReadOnly) Counters() *stats.ServeCounters      { return s.sess.Counters() }
func (s *stubReadOnly) Stats() stats.ServeSnapshot          { return s.sess.Stats() }
func (s *stubReadOnly) IOStats() kcore.IOStats              { return s.sess.IOStats() }
func (s *stubReadOnly) Checkpoint() error                   { return s.writeErr }
func (s *stubReadOnly) Rebalance() (shard.RebalanceReport, error) {
	return shard.RebalanceReport{}, s.writeErr
}
func (s *stubReadOnly) DurabilityStats() stats.WalSnapshot {
	return stats.WalSnapshot{Degraded: s.degraded}
}
func (s *stubReadOnly) ReplicaStats() stats.ReplicaSnapshot { return stats.ReplicaSnapshot{} }
func (s *stubReadOnly) Close() error {
	err := s.sess.Close()
	if cerr := s.g.Close(); err == nil {
		err = cerr
	}
	return err
}

// newDurableAPI builds a registry in data-dir mode with one durable
// default graph.
func newDurableAPI(t *testing.T, feedRecords int) (*httptest.Server, *engine.Registry, engine.Engine) {
	t.Helper()
	reg := engine.NewRegistry(&engine.Options{
		Serve: serve.Options{FlushInterval: time.Millisecond},
		Durability: &engine.DurabilityOptions{
			Dir:         t.TempDir(),
			FeedRecords: feedRecords,
		},
	})
	t.Cleanup(func() { reg.Close() })
	eng, err := reg.Open("default", writeGraph(t, 120, 11))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(reg, "default"))
	t.Cleanup(ts.Close)
	return ts, reg, eng
}

// TestWriteRefusalSemantics pins the consistent 4xx surface for graphs
// that cannot accept writes: replication followers and degraded
// durable graphs answer 409 with {"error":..., "read_only": true} on
// every mutating route.
func TestWriteRefusalSemantics(t *testing.T) {
	followerErr := fmt.Errorf("replica: refusing local write: %w", engine.ErrReadOnly)
	cases := []struct {
		name     string
		writeErr error
		degraded bool
		method   string
		path     string
		body     string
	}{
		{"follower update", followerErr, false, "POST", "/g/%s/update", `{"updates":[{"op":"insert","u":1,"v":2}]}`},
		{"follower update wait", followerErr, false, "POST", "/g/%s/update?wait=1", `{"updates":[{"op":"delete","u":1,"v":2}]}`},
		{"degraded update", engine.ErrDegraded, true, "POST", "/g/%s/update", `{"updates":[{"op":"insert","u":1,"v":2}]}`},
		{"degraded checkpoint", engine.ErrDegraded, true, "POST", "/g/%s/checkpoint", ""},
		{"degraded rebalance", engine.ErrDegraded, true, "POST", "/g/%s/rebalance", ""},
	}
	ts, reg := newAPI(t)
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			name := fmt.Sprintf("ro%d", i)
			if err := reg.Register(name, newStubReadOnly(t, tc.writeErr, tc.degraded)); err != nil {
				t.Fatal(err)
			}
			var resp struct {
				Error    string `json:"error"`
				ReadOnly bool   `json:"read_only"`
			}
			do(t, tc.method, ts.URL+fmt.Sprintf(tc.path, name), tc.body, http.StatusConflict, &resp)
			if resp.Error == "" || !resp.ReadOnly {
				t.Fatalf("409 body must carry error and read_only: %+v", resp)
			}
			// Reads on the same graph still work.
			do(t, "GET", ts.URL+fmt.Sprintf("/g/%s/degeneracy", name), "", http.StatusOK, nil)
		})
	}
}

// TestChangesRouteStatusCodes pins the non-streaming answers of the
// change-stream route: 400 without a change feed, 410 with the oldest
// servable cursor once retention trimmed past the requested one, and
// 400 on a malformed cursor.
func TestChangesRouteStatusCodes(t *testing.T) {
	t.Run("not durable", func(t *testing.T) {
		ts, _ := newAPI(t)
		do(t, "GET", ts.URL+"/g/default/changes", "", http.StatusBadRequest, nil)
	})
	t.Run("bad cursor", func(t *testing.T) {
		ts, _, _ := newDurableAPI(t, 0)
		do(t, "GET", ts.URL+"/g/default/changes?from=banana", "", http.StatusBadRequest, nil)
	})
	t.Run("trimmed cursor answers 410 with oldest", func(t *testing.T) {
		ts, _, eng := newDurableAPI(t, 4)
		driveRecords(t, eng, 12)
		var resp struct {
			Error     string `json:"error"`
			OldestLSN uint64 `json:"oldest_lsn"`
		}
		do(t, "GET", ts.URL+"/g/default/changes?from=0", "", http.StatusGone, &resp)
		if resp.OldestLSN == 0 || resp.Error == "" {
			t.Fatalf("410 body must carry the oldest servable cursor: %+v", resp)
		}
	})
}

// driveRecords applies toggling delete/insert pairs until at least k
// change-feed records exist, returning the resulting LSN. Each pair
// touches a distinct edge, so at least one of the two applies whether
// or not the fixture already held it.
func driveRecords(t *testing.T, eng engine.Engine, k uint64) uint64 {
	t.Helper()
	cs, ok := engine.AsChangeStreamer(eng)
	if !ok {
		t.Fatal("engine has no change stream")
	}
	u := uint32(0)
	for cs.CurrentLSN() < k {
		if err := eng.Apply(serve.Update{Op: serve.OpDelete, U: u, V: u + 1}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Apply(serve.Update{Op: serve.OpInsert, U: u, V: u + 1}); err != nil {
			t.Fatal(err)
		}
		u += 2
	}
	return cs.CurrentLSN()
}

// TestChangesStreamsAppliedRecords reads real frames off the wire: the
// records streamed for a cursor are exactly the applied batches after
// it, in LSN order, heartbeats interleaving when idle.
func TestChangesStreamsAppliedRecords(t *testing.T) {
	ts, _, eng := newDurableAPI(t, 0)
	last := driveRecords(t, eng, 5)
	resp, err := http.Get(ts.URL + "/g/default/changes?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Fatalf("content type %q", got)
	}
	if resp.Header.Get("X-Kcore-Epoch") == "" || resp.Header.Get("X-Kcore-LSN") == "" {
		t.Fatal("stream response must carry epoch and LSN headers")
	}
	fr := wal.NewFrameReader(resp.Body)
	next := uint64(1)
	for next <= last {
		frame, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("reading frame %d: %v", next, err)
		}
		if frame.Heartbeat {
			continue
		}
		if frame.LSN != next {
			t.Fatalf("record LSN %d, want %d", frame.LSN, next)
		}
		if len(frame.Deletes)+len(frame.Inserts) == 0 {
			t.Fatalf("record %d carries no edges", frame.LSN)
		}
		next++
	}
}

// TestCheckpointDownloadTar pins the bootstrap download: a tar whose
// entries are exactly the canonical bundle names, with a manifest that
// parses and matches the X-Kcore-Ckpt headers.
func TestCheckpointDownloadTar(t *testing.T) {
	ts, _, _ := newDurableAPI(t, 0)
	resp, err := http.Get(ts.URL + "/g/default/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-tar" {
		t.Fatalf("content type %q", got)
	}
	if resp.Header.Get("X-Kcore-Ckpt-LSN") == "" || resp.Header.Get("X-Kcore-Ckpt-Seq") == "" {
		t.Fatal("checkpoint download must carry LSN and Seq headers")
	}
	allowed := make(map[string]bool)
	for _, name := range wal.CheckpointBundleNames() {
		allowed[name] = true
	}
	var sawManifest bool
	tr := tar.NewReader(resp.Body)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !allowed[hdr.Name] {
			t.Fatalf("unexpected tar entry %q", hdr.Name)
		}
		if hdr.Name == "MANIFEST" {
			sawManifest = true
			data, err := io.ReadAll(tr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wal.ParseCheckpointManifest(data); err != nil {
				t.Fatalf("downloaded manifest does not parse: %v", err)
			}
		}
	}
	if !sawManifest {
		t.Fatal("download carried no MANIFEST")
	}
	// The non-durable default graph has nothing to download.
	ts2, _ := newAPI(t)
	do(t, "GET", ts2.URL+"/g/default/checkpoint", "", http.StatusBadRequest, nil)
}

// TestEpochHeaderOnReads asserts every graph read response is tagged
// with the epoch it was served from.
func TestEpochHeaderOnReads(t *testing.T) {
	ts, _ := newAPI(t)
	for _, path := range []string{
		"/g/default/core?v=3",
		"/g/default/kcore?k=1",
		"/g/default/degeneracy",
		"/g/default/stats",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // headers are the assertion
		resp.Body.Close()
		if resp.Header.Get("X-Kcore-Epoch") == "" {
			t.Fatalf("%s response missing X-Kcore-Epoch", path)
		}
	}
	// GET /graphs surfaces the follower role for ReplicaStatser engines.
	reg2 := engine.NewRegistry(nil)
	t.Cleanup(func() { reg2.Close() })
	if err := reg2.Register("f", newStubReadOnly(t, engine.ErrReadOnly, false)); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(httpapi.New(reg2, "f"))
	t.Cleanup(ts2.Close)
	var listing struct {
		Graphs []struct {
			Name string `json:"name"`
			Role string `json:"role"`
		} `json:"graphs"`
	}
	do(t, "GET", ts2.URL+"/graphs", "", http.StatusOK, &listing)
	if len(listing.Graphs) != 1 || listing.Graphs[0].Role != "follower" {
		t.Fatalf("GET /graphs must report the follower role: %+v", listing.Graphs)
	}
}
