package httpapi_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kcore/internal/engine"
	"kcore/internal/gen"
	"kcore/internal/graphio"
	"kcore/internal/httpapi"
)

// writeGraph materialises a deterministic social graph on disk and
// returns its path prefix.
func writeGraph(t testing.TB, n uint32, seed int64) string {
	t.Helper()
	csr := gen.Build(gen.Social(n, 3, 8, 8, seed))
	base := filepath.Join(t.TempDir(), fmt.Sprintf("g%d", seed))
	if err := graphio.WriteCSR(base, csr, nil); err != nil {
		t.Fatal(err)
	}
	return base
}

// newAPI builds a registry with a default graph plus the named extras
// and wraps it in an httptest server.
func newAPI(t *testing.T, extras ...string) (*httptest.Server, *engine.Registry) {
	t.Helper()
	reg := engine.NewRegistry(nil)
	t.Cleanup(func() { reg.Close() })
	if _, err := reg.Open("default", writeGraph(t, 150, 1)); err != nil {
		t.Fatal(err)
	}
	for i, name := range extras {
		if _, err := reg.Open(name, writeGraph(t, 100+20*uint32(i), int64(50+i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(httpapi.New(reg, "default"))
	t.Cleanup(ts.Close)
	return ts, reg
}

// do runs one request and decodes the JSON response, asserting status.
func do(t *testing.T, method, url, body string, wantStatus int, out any) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s %s = %d, want %d\nbody: %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v", method, url, err)
		}
	}
}

type errResp struct {
	Error string `json:"error"`
}

func TestLegacyRoutesAliasDefaultGraph(t *testing.T) {
	ts, _ := newAPI(t)

	// The same question through the alias and the explicit route must
	// give the same answer.
	var legacy, scoped struct {
		Node  uint32 `json:"node"`
		Core  uint32 `json:"core"`
		Epoch uint64 `json:"epoch"`
	}
	do(t, "GET", ts.URL+"/core?v=3", "", http.StatusOK, &legacy)
	do(t, "GET", ts.URL+"/g/default/core?v=3", "", http.StatusOK, &scoped)
	if legacy != scoped {
		t.Fatalf("alias mismatch: /core %+v, /g/default/core %+v", legacy, scoped)
	}

	var deg struct {
		Degeneracy uint32  `json:"degeneracy"`
		Nodes      uint32  `json:"nodes"`
		CoreSizes  []int64 `json:"core_sizes"`
	}
	do(t, "GET", ts.URL+"/degeneracy", "", http.StatusOK, &deg)
	if deg.Nodes != 150 || len(deg.CoreSizes) != int(deg.Degeneracy)+1 {
		t.Fatalf("degeneracy = %+v", deg)
	}

	var health struct {
		Status string            `json:"status"`
		Epoch  uint64            `json:"epoch"`
		Graphs map[string]uint64 `json:"graphs"`
	}
	do(t, "GET", ts.URL+"/healthz", "", http.StatusOK, &health)
	if health.Status != "ok" || len(health.Graphs) != 1 {
		t.Fatalf("healthz = %+v", health)
	}
}

func TestQueryErrorPaths(t *testing.T) {
	ts, _ := newAPI(t)
	var e errResp

	// Bad/missing k on kcore.
	do(t, "GET", ts.URL+"/kcore", "", http.StatusBadRequest, &e)
	do(t, "GET", ts.URL+"/kcore?k=abc", "", http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "k=") {
		t.Fatalf("bad-k error %q does not name the parameter", e.Error)
	}
	do(t, "GET", ts.URL+"/kcore?k=-1", "", http.StatusBadRequest, &e)
	do(t, "GET", ts.URL+"/kcore?k=2&limit=-3", "", http.StatusBadRequest, &e)

	// Out-of-range node.
	do(t, "GET", ts.URL+"/core?v=150", "", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "out of range") {
		t.Fatalf("out-of-range error %q", e.Error)
	}
	do(t, "GET", ts.URL+"/core", "", http.StatusBadRequest, &e)

	// Malformed update bodies.
	do(t, "POST", ts.URL+"/update", `{not json`, http.StatusBadRequest, &e)
	do(t, "POST", ts.URL+"/update", `{}`, http.StatusBadRequest, &e)
	if e.Error != "no updates" {
		t.Fatalf("empty-update error %q", e.Error)
	}
	do(t, "POST", ts.URL+"/update", `{"updates":[{"op":"upsert","u":0,"v":1}]}`, http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "upsert") {
		t.Fatalf("bad-op error %q does not name the op", e.Error)
	}

	// Unknown graph name, on every per-graph route.
	for _, route := range []struct{ method, path string }{
		{"GET", "/g/nope/core?v=0"},
		{"GET", "/g/nope/kcore?k=1"},
		{"GET", "/g/nope/degeneracy"},
		{"GET", "/g/nope/stats"},
		{"POST", "/g/nope/update"},
	} {
		body := ""
		if route.method == "POST" {
			body = `{"updates":[{"op":"insert","u":0,"v":1}]}`
		}
		do(t, route.method, ts.URL+route.path, body, http.StatusNotFound, &e)
		if !strings.Contains(e.Error, "nope") {
			t.Fatalf("%s %s: error %q does not name the graph", route.method, route.path, e.Error)
		}
	}
	do(t, "DELETE", ts.URL+"/graphs/nope", "", http.StatusNotFound, &e)
}

func TestKCoreLimitAndMemoizedPath(t *testing.T) {
	ts, reg := newAPI(t)

	var kc struct {
		K     uint32   `json:"k"`
		Count int      `json:"count"`
		Nodes []uint32 `json:"nodes"`
	}
	do(t, "GET", ts.URL+"/kcore?k=1&limit=5", "", http.StatusOK, &kc)
	if kc.Count == 0 || len(kc.Nodes) > 5 {
		t.Fatalf("kcore = %+v", kc)
	}
	// Past the degeneracy: empty list, not null, not an error.
	do(t, "GET", ts.URL+"/kcore?k=4000000000", "", http.StatusOK, &kc)
	if kc.Count != 0 || kc.Nodes == nil {
		t.Fatalf("kcore past kmax = %+v, want empty non-null nodes", kc)
	}

	// Repeated queries against the unchanged epoch hit the memo.
	for i := 0; i < 8; i++ {
		do(t, "GET", ts.URL+fmt.Sprintf("/kcore?k=%d", i%4), "", http.StatusOK, &kc)
	}
	eng, _ := reg.Get("default")
	st := eng.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one per epoch)", st.CacheMisses)
	}
	if st.CacheHits < 8 {
		t.Fatalf("cache hits = %d, want >= 8", st.CacheHits)
	}
}

func TestUpdateRoundTripPerGraph(t *testing.T) {
	ts, _ := newAPI(t, "second")

	// A same-edge toggle nets to nothing: the opposing pair annihilates
	// in the coalescer, so no epoch is published and the graph state is
	// unchanged (edge (0,1) exists in the fixture, so the leading insert
	// is rejected as a duplicate).
	var upd struct {
		Enqueued int    `json:"enqueued"`
		Waited   bool   `json:"waited"`
		Epoch    uint64 `json:"epoch"`
	}
	do(t, "POST", ts.URL+"/g/second/update?wait=1",
		`{"updates":[{"op":"insert","u":0,"v":1},{"op":"delete","u":0,"v":1},{"op":"insert","u":0,"v":1}]}`,
		http.StatusOK, &upd)
	if upd.Enqueued != 3 || !upd.Waited || upd.Epoch != 0 {
		t.Fatalf("update = %+v, want all annihilated at epoch 0", upd)
	}

	// A net change on the second graph publishes a new epoch there; the
	// default graph's does not move.
	do(t, "POST", ts.URL+"/g/second/update?wait=1",
		`{"updates":[{"op":"delete","u":0,"v":1}]}`, http.StatusOK, &upd)
	if upd.Enqueued != 1 || !upd.Waited || upd.Epoch == 0 {
		t.Fatalf("update = %+v, want epoch advanced", upd)
	}

	var st struct {
		Serve struct {
			Enqueued    int64 `json:"enqueued"`
			Annihilated int64 `json:"annihilated_updates"`
		} `json:"serve"`
		Epoch uint64 `json:"epoch"`
	}
	do(t, "GET", ts.URL+"/g/second/stats", "", http.StatusOK, &st)
	if st.Serve.Enqueued != 4 {
		t.Fatalf("second graph enqueued = %d, want 4", st.Serve.Enqueued)
	}
	if st.Serve.Annihilated != 2 {
		t.Fatalf("second graph annihilated = %d, want 2", st.Serve.Annihilated)
	}
	do(t, "GET", ts.URL+"/g/default/stats", "", http.StatusOK, &st)
	if st.Serve.Enqueued != 0 || st.Epoch != 0 {
		t.Fatalf("default graph moved: %+v (counters not per-graph?)", st)
	}

	// Async path returns 202.
	do(t, "POST", ts.URL+"/update", `{"updates":[{"op":"delete","u":0,"v":1}]}`,
		http.StatusAccepted, &upd)
	if upd.Waited {
		t.Fatal("async update reported waited")
	}
}

func TestAdminCreateListDrop(t *testing.T) {
	ts, _ := newAPI(t)
	base := writeGraph(t, 90, 77)

	var list struct {
		Count   int    `json:"count"`
		Default string `json:"default"`
		Graphs  []struct {
			Name  string `json:"name"`
			Nodes uint32 `json:"nodes"`
		} `json:"graphs"`
	}
	do(t, "GET", ts.URL+"/graphs", "", http.StatusOK, &list)
	if list.Count != 1 || list.Default != "default" {
		t.Fatalf("initial list = %+v", list)
	}

	var created struct {
		Name  string `json:"name"`
		Nodes uint32 `json:"nodes"`
		Kmax  uint32 `json:"kmax"`
	}
	body := fmt.Sprintf(`{"name":"scratch","path":%q}`, base)
	do(t, "POST", ts.URL+"/graphs", body, http.StatusCreated, &created)
	if created.Name != "scratch" || created.Nodes != 90 {
		t.Fatalf("created = %+v", created)
	}

	// The new graph serves immediately.
	var core struct {
		Core uint32 `json:"core"`
	}
	do(t, "GET", ts.URL+"/g/scratch/core?v=0", "", http.StatusOK, &core)

	do(t, "GET", ts.URL+"/graphs", "", http.StatusOK, &list)
	if list.Count != 2 || list.Graphs[1].Name != "scratch" || list.Graphs[1].Nodes != 90 {
		t.Fatalf("list after create = %+v", list)
	}

	// Create error paths.
	var e errResp
	do(t, "POST", ts.URL+"/graphs", body, http.StatusConflict, &e)
	do(t, "POST", ts.URL+"/graphs", `{"name":"scratch"}`, http.StatusBadRequest, &e)
	do(t, "POST", ts.URL+"/graphs", `{not json`, http.StatusBadRequest, &e)
	do(t, "POST", ts.URL+"/graphs", `{"name":"bad/name","path":"/x"}`, http.StatusBadRequest, &e)
	do(t, "POST", ts.URL+"/graphs", fmt.Sprintf(`{"name":"missing","path":%q}`, base+"-nope"),
		http.StatusUnprocessableEntity, &e)

	// Drop round-trip: gone from routes and from the listing.
	var dropped struct {
		Dropped string `json:"dropped"`
	}
	do(t, "DELETE", ts.URL+"/graphs/scratch", "", http.StatusOK, &dropped)
	if dropped.Dropped != "scratch" {
		t.Fatalf("dropped = %+v", dropped)
	}
	do(t, "GET", ts.URL+"/g/scratch/core?v=0", "", http.StatusNotFound, &e)
	do(t, "GET", ts.URL+"/graphs", "", http.StatusOK, &list)
	if list.Count != 1 {
		t.Fatalf("list after drop = %+v", list)
	}
	// The name is reusable.
	do(t, "POST", ts.URL+"/graphs", body, http.StatusCreated, &created)
}

// TestTwoGraphsServeConcurrently drives mixed read/update traffic at two
// graphs from many goroutines through one server — the multi-graph
// acceptance path.
func TestTwoGraphsServeConcurrently(t *testing.T) {
	ts, reg := newAPI(t, "beta")

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "default"
			if w%2 == 1 {
				name = "beta"
			}
			u := uint32(2 * w)
			for i := 0; i < 25; i++ {
				resp, err := http.Get(ts.URL + fmt.Sprintf("/g/%s/kcore?k=2&limit=3", name))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: kcore = %d", w, resp.StatusCode)
					return
				}
				body := fmt.Sprintf(`{"updates":[{"op":"delete","u":%d,"v":%d},{"op":"insert","u":%d,"v":%d}]}`,
					u, u+1, u, u+1)
				pr, err := http.Post(ts.URL+fmt.Sprintf("/g/%s/update?wait=1", name),
					"application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, pr.Body) //nolint:errcheck
				pr.Body.Close()
				if pr.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: update = %d", w, pr.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Both graphs made progress, independently.
	for _, name := range []string{"default", "beta"} {
		eng, ok := reg.Get(name)
		if !ok {
			t.Fatalf("graph %s missing", name)
		}
		if eng.Snapshot().Seq == 0 {
			t.Fatalf("graph %s never advanced", name)
		}
		if st := eng.Stats(); st.Enqueued != 4*25*2 {
			t.Fatalf("graph %s enqueued = %d, want 200", name, st.Enqueued)
		}
	}
}

// TestShardedGraphOverHTTP creates a sharded graph through the admin
// API and checks the sharded surfaces: creation echoes the shard count,
// /stats gains the per-shard block and cross-shard edge ratio, queries
// and synchronous updates behave exactly like a single-writer graph,
// and a bad shard count is rejected.
func TestShardedGraphOverHTTP(t *testing.T) {
	ts, _ := newAPI(t)
	base := writeGraph(t, 130, 77)

	var created struct {
		Name   string `json:"name"`
		Shards int    `json:"shards"`
		Nodes  uint32 `json:"nodes"`
		Edges  int64  `json:"edges"`
	}
	do(t, "POST", ts.URL+"/graphs",
		fmt.Sprintf(`{"name":"sh","path":%q,"shards":4}`, base),
		http.StatusCreated, &created)
	if created.Shards != 4 || created.Nodes != 130 {
		t.Fatalf("created = %+v, want shards=4 nodes=130", created)
	}

	var bad map[string]any
	do(t, "POST", ts.URL+"/graphs",
		fmt.Sprintf(`{"name":"neg","path":%q,"shards":-1}`, base),
		http.StatusBadRequest, &bad)

	// Synchronous update + query round trip through the sharded engine.
	var upd struct {
		Enqueued int    `json:"enqueued"`
		Epoch    uint64 `json:"epoch"`
	}
	do(t, "POST", ts.URL+"/g/sh/update?wait=1",
		`{"updates":[{"op":"insert","u":0,"v":129}]}`, http.StatusOK, &upd)
	if upd.Enqueued != 1 {
		t.Fatalf("enqueued = %d, want 1", upd.Enqueued)
	}
	var core struct {
		Core  uint32 `json:"core"`
		Epoch uint64 `json:"epoch"`
	}
	do(t, "GET", ts.URL+"/g/sh/core?v=0", "", http.StatusOK, &core)

	var st struct {
		Edges  int64 `json:"edges"`
		Shards *struct {
			Routing struct {
				Composes int64 `json:"composes"`
			} `json:"routing"`
			Shards []json.RawMessage `json:"shards"`
		} `json:"shards"`
		CrossRatio *float64 `json:"cross_shard_edge_ratio"`
	}
	do(t, "GET", ts.URL+"/g/sh/stats", "", http.StatusOK, &st)
	if st.Shards == nil || st.CrossRatio == nil {
		t.Fatalf("sharded /stats missing shard block: %+v", st)
	}
	if got := len(st.Shards.Shards); got != 5 { // 4 shards + cut session
		t.Fatalf("/stats reports %d shard writers, want 5", got)
	}
	if st.Shards.Routing.Composes == 0 {
		t.Fatal("/stats reports zero composes after a waited update")
	}

	// The plain default graph's /stats must not grow a shard block.
	var plain struct {
		Shards *json.RawMessage `json:"shards"`
	}
	do(t, "GET", ts.URL+"/g/default/stats", "", http.StatusOK, &plain)
	if plain.Shards != nil {
		t.Fatal("single-writer /stats unexpectedly has a shards block")
	}

	var dropped map[string]any
	do(t, "DELETE", ts.URL+"/graphs/sh", "", http.StatusOK, &dropped)
}

// TestRebalanceOverHTTP covers the locality-aware repartitioning
// endpoint: a sharded graph opened with the (cut-heavy) hash partition
// rebalances to a smaller cut and reports the migration; non-sharded
// graphs answer 400; unknown partitioner names on create answer 400
// while "ldg" works.
func TestRebalanceOverHTTP(t *testing.T) {
	ts, _ := newAPI(t)
	base := writeGraph(t, 140, 81)

	var created map[string]any
	do(t, "POST", ts.URL+"/graphs",
		fmt.Sprintf(`{"name":"sh","path":%q,"shards":3}`, base),
		http.StatusCreated, &created)

	var rep struct {
		MovedNodes    int     `json:"moved_nodes"`
		MigratedEdges int     `json:"migrated_edges"`
		CutBefore     int64   `json:"cut_edges_before"`
		CutAfter      int64   `json:"cut_edges_after"`
		TotalEdges    int64   `json:"total_edges"`
		RatioAfter    float64 `json:"cross_shard_edge_ratio_after"`
		Epoch         uint64  `json:"epoch"`
	}
	do(t, "POST", ts.URL+"/g/sh/rebalance", "", http.StatusOK, &rep)
	if rep.CutAfter >= rep.CutBefore {
		t.Fatalf("rebalance did not shrink the cut: %d -> %d", rep.CutBefore, rep.CutAfter)
	}
	if rep.MovedNodes == 0 || rep.MigratedEdges == 0 || rep.TotalEdges == 0 {
		t.Fatalf("rebalance report looks empty: %+v", rep)
	}

	// The rebalances counter surfaces in the sharded /stats block.
	var st struct {
		Shards struct {
			Routing struct {
				Rebalances    int64 `json:"rebalances"`
				MigratedEdges int64 `json:"migrated_edges"`
			} `json:"routing"`
		} `json:"shards"`
	}
	do(t, "GET", ts.URL+"/g/sh/stats", "", http.StatusOK, &st)
	if st.Shards.Routing.Rebalances != 1 || st.Shards.Routing.MigratedEdges != int64(rep.MigratedEdges) {
		t.Fatalf("stats rebalance counters = %+v, want 1 rebalance / %d migrated edges",
			st.Shards.Routing, rep.MigratedEdges)
	}

	// Non-sharded graphs have nothing to rebalance.
	var e errResp
	do(t, "POST", ts.URL+"/g/default/rebalance", "", http.StatusBadRequest, &e)
	if e.Error == "" {
		t.Fatal("rebalance of a plain graph returned no error body")
	}

	// Partitioner selection: unknown names rejected, ldg accepted.
	do(t, "POST", ts.URL+"/graphs",
		fmt.Sprintf(`{"name":"badpart","path":%q,"shards":2,"partitioner":"metis"}`, base),
		http.StatusBadRequest, &e)
	var ldg map[string]any
	do(t, "POST", ts.URL+"/graphs",
		fmt.Sprintf(`{"name":"ldg","path":%q,"shards":2,"partitioner":"ldg"}`, base),
		http.StatusCreated, &ldg)
}
