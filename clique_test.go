package kcore_test

import (
	"testing"

	"kcore"
	"kcore/internal/gen"
)

func TestApproxMaxCliqueSampleGraph(t *testing.T) {
	g := buildSample(t)
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	clique, err := g.ApproxMaxClique(res.Core)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 1 graph's maximum clique is the K4 on v0..v3.
	if len(clique) != 4 {
		t.Fatalf("clique = %v, want the K4", clique)
	}
	for i, v := range []uint32{0, 1, 2, 3} {
		if clique[i] != v {
			t.Fatalf("clique = %v, want [0 1 2 3]", clique)
		}
	}
}

func TestApproxMaxCliqueCompleteGraph(t *testing.T) {
	var edges []kcore.Edge
	for i := uint32(0); i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			edges = append(edges, kcore.Edge{U: i, V: j})
		}
	}
	g := buildFrom(t, edges, 7)
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	clique, err := g.ApproxMaxClique(res.Core)
	if err != nil {
		t.Fatal(err)
	}
	if len(clique) != 7 {
		t.Fatalf("K7 clique size = %d, want 7", len(clique))
	}
}

func TestApproxMaxCliqueIsAClique(t *testing.T) {
	edges := gen.Social(500, 3, 15, 11, 901)
	mem := gen.Build(edges)
	g := buildFrom(t, edges, mem.NumNodes())
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	clique, err := g.ApproxMaxClique(res.Core)
	if err != nil {
		t.Fatal(err)
	}
	if len(clique) < 4 {
		t.Fatalf("clique %v suspiciously small for a graph with planted cliques", clique)
	}
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			has, err := g.HasEdge(clique[i], clique[j])
			if err != nil {
				t.Fatal(err)
			}
			if !has {
				t.Fatalf("returned set is not a clique: (%d,%d) missing", clique[i], clique[j])
			}
		}
	}
	// Size is bounded by degeneracy + 1.
	if len(clique) > int(res.Kmax)+1 {
		t.Fatalf("clique of %d exceeds kmax+1 = %d", len(clique), res.Kmax+1)
	}
}

func TestApproxMaxCliqueValidation(t *testing.T) {
	g := buildSample(t)
	if _, err := g.ApproxMaxClique([]uint32{1, 2}); err == nil {
		t.Fatal("mismatched core array accepted")
	}
}
