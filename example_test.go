package kcore_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kcore"
)

// sampleEdges is the paper's Fig. 1 running example.
func sampleEdges() []kcore.Edge {
	return []kcore.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3},
		{U: 2, V: 3}, {U: 2, V: 4},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 3, V: 6},
		{U: 4, V: 5},
		{U: 5, V: 6}, {U: 5, V: 7}, {U: 5, V: 8},
		{U: 6, V: 7},
	}
}

func Example() {
	dir, err := os.MkdirTemp("", "kcore-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "g")

	if err := kcore.Build(base, kcore.SliceEdges(sampleEdges()), nil); err != nil {
		log.Fatal(err)
	}
	g, err := kcore.Open(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	res, err := kcore.Decompose(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cores:", res.Core)
	fmt.Println("kmax:", res.Kmax)
	// Output:
	// cores: [3 3 3 3 2 2 2 2 1]
	// kmax: 3
}

func ExampleMaintainer() {
	dir, err := os.MkdirTemp("", "kcore-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "g")
	if err := kcore.Build(base, kcore.SliceEdges(sampleEdges()), nil); err != nil {
		log.Fatal(err)
	}
	g, err := kcore.Open(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	m, err := kcore.NewMaintainer(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	before, _ := m.CoreOf(8)
	if _, err := m.InsertEdge(7, 8); err != nil { // the paper's Example 2.1
		log.Fatal(err)
	}
	after, _ := m.CoreOf(8)
	fmt.Printf("core(v8): %d -> %d\n", before, after)
	// Output:
	// core(v8): 1 -> 2
}

func ExampleKCoreNodes() {
	core := []uint32{3, 3, 3, 3, 2, 2, 2, 2, 1}
	fmt.Println(kcore.KCoreNodes(core, 3))
	fmt.Println(kcore.CoreHistogram(core))
	// Output:
	// [0 1 2 3]
	// [0 1 4 4]
}

func ExampleDegeneracyOrder() {
	core := []uint32{2, 1, 2, 0}
	fmt.Println(kcore.DegeneracyOrder(core))
	// Output:
	// [3 1 0 2]
}
