// Command gengraph generates a synthetic graph — either one of the 12
// Table I dataset analogues or a parameterised generator family — and
// writes it in the on-disk node-table/edge-table format (and optionally
// as a text edge list).
//
// Usage:
//
//	gengraph -dataset twitter-sim -out /data/twitter
//	gengraph -family rmat -scale 16 -factor 20 -seed 7 -out /data/r
//	gengraph -family web -scale 14 -factor 8 -chains 60 -chainlen 200 -out /data/w
package main

import (
	"flag"
	"fmt"
	"os"

	"kcore/internal/gen"
	"kcore/internal/graphio"
	"kcore/internal/memgraph"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "dataset analogue name (e.g. uk-sim); overrides -family")
		family   = flag.String("family", "", "generator family: er, ba, rmat, web, social, smallworld")
		out      = flag.String("out", "", "output path prefix (required)")
		textOut  = flag.String("text", "", "also write a text edge list to this path")
		n        = flag.Uint("n", 10000, "nodes (er, ba, social, smallworld)")
		m        = flag.Int("m", 50000, "edges (er)")
		k        = flag.Int("k", 4, "attachment/lattice degree (ba, social, smallworld)")
		scale    = flag.Int("scale", 12, "log2 nodes (rmat, web)")
		factor   = flag.Int("factor", 8, "edge factor (rmat, web)")
		chains   = flag.Int("chains", 40, "appendage chains (web)")
		chainlen = flag.Int("chainlen", 100, "appendage chain length (web)")
		cliques  = flag.Int("cliques", 20, "planted cliques (social)")
		beta     = flag.Float64("beta", 0.1, "rewiring probability (smallworld)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		os.Exit(2)
	}

	var edges []memgraph.Edge
	switch {
	case *dataset != "":
		d, err := gen.ByName(*dataset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		edges = d.Make()
	case *family != "":
		switch *family {
		case "er":
			edges = gen.ErdosRenyi(uint32(*n), *m, *seed)
		case "ba":
			edges = gen.BarabasiAlbert(uint32(*n), *k, *seed)
		case "rmat":
			edges = gen.RMAT(*scale, *factor, 0.57, 0.19, 0.19, *seed)
		case "web":
			edges = gen.WebGraph(*scale, *factor, *chains, *chainlen, *seed)
		case "social":
			edges = gen.Social(uint32(*n), *k, *cliques, 12, *seed)
		case "smallworld":
			edges = gen.SmallWorld(uint32(*n), *k, *beta, *seed)
		default:
			fmt.Fprintf(os.Stderr, "gengraph: unknown family %q\n", *family)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "gengraph: one of -dataset or -family is required")
		os.Exit(2)
	}

	g := gen.Build(edges)
	if err := graphio.WriteCSR(*out, g, nil); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	if *textOut != "" {
		if err := graphio.WriteText(*textOut, g); err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
}
