// Command kcored serves core-decomposition queries over HTTP while edge
// updates stream in. It is a thin wiring layer: graphs are opened into
// an engine.Registry (one epoch-snapshot serving engine per graph, see
// internal/engine and internal/serve) and requests are routed by
// internal/httpapi. Queries never block on updates; updates are
// coalesced into batches maintained incrementally with SemiInsert*/
// SemiDelete*; repeated k-core/profile queries on an unchanged epoch are
// served from the per-epoch memo.
//
// Usage:
//
//	kcored -graph /data/twitter -addr :8080 [-shards 4] [-partitioner ldg] [-load social=/data/social ...]
//	kcored -follow http://leader:7171 -addr :7272
//
// The -graph flag names the default graph (served both at /g/default/...
// and at the pre-registry single-graph routes); each -load name=path
// flag opens an additional graph, and more can be added or dropped at
// runtime through the /graphs admin endpoints (POST /graphs accepts
// per-graph "shards" and "partitioner" options). -shards >= 2 serves
// every graph opened at startup from that many parallel shard writers
// (internal/shard); -partitioner picks how nodes map to shards (hash,
// range, or the locality-aware ldg), and POST /g/{name}/rebalance
// recomputes that assignment online (incrementally — bounded batches of
// edges migrate per compose generation while serving continues).
// -apply-workers composes with -shards: each of the shards+1 writers
// applies its batches with that many region-parallel workers, and the
// default 0 sizes the product to the machine (GOMAXPROCS). See
// internal/httpapi for the full route list.
//
// -data-dir turns on durability: every graph gets a write-ahead log and
// checkpoints under <dir>/<name>/ (sync policy from -fsync, periodic
// checkpoints from -checkpoint-every), SIGINT/SIGTERM shut down
// gracefully (drain HTTP, final sync + checkpoint per graph), and a
// restart with the same -data-dir recovers every graph from its latest
// checkpoint + WAL tail before -graph/-load open anything anew (a
// recovered name wins over its flag — unless the base file on disk is
// newer than the recovered checkpoint, in which case the stale recovered
// graph is dropped and the base is re-decomposed).
//
// -follow turns the process into a read replica: instead of opening
// graphs it bootstraps from the leader's checkpoint download
// (GET /g/default/checkpoint), tails the leader's change stream
// (GET /g/default/changes), and serves the same read routes with
// epoch-consistent bounded-stale data (internal/replica). Local writes
// are refused with 409. -follow composes with -data-dir (the follower's
// checkpoint working directory) but not with -graph/-load.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kcore"
	"kcore/internal/engine"
	"kcore/internal/httpapi"
	"kcore/internal/replica"
	"kcore/internal/serve"
	"kcore/internal/wal"
)

// DefaultGraph is the registry name of the graph from -graph, the one
// the single-graph routes alias to.
const DefaultGraph = "default"

func main() {
	var (
		graphBase = flag.String("graph", "", "default graph path prefix (required)")
		addr      = flag.String("addr", "127.0.0.1:7171", "listen address (port 0 picks a free port)")
		batch     = flag.Int("batch", 256, "max updates coalesced into one batch")
		flush     = flag.Duration("flush", 2*time.Millisecond, "max delay before pending updates are applied")
		queueCap  = flag.Int("queue", 4096, "ingest queue capacity (enqueue blocks when full)")
		applyW    = flag.Int("apply-workers", 0, "region-parallel flush width per writer: >= 2 partitions each coalesced batch into component-disjoint regions applied by that many concurrent workers; 1 forces the sequential apply path; 0 picks automatically — sharded graphs (-shards >= 2) get min(GOMAXPROCS/(shards+1), 4) workers per writer, single-writer graphs stay sequential. The width multiplies across -shards: a sharded graph runs shards+1 writers, each applying with this many workers")
		blockSize = flag.Int("block", 4096, "I/O accounting block size B")
		backend   = flag.String("backend", "", "serving backend for every opened graph: mem (in-memory adjacency, the default), sharded (multi-core writers; or just set -shards >= 2), or disk (beyond-RAM: adjacency stays on disk in partition files behind a bounded block cache, only the core arrays and a small update overlay are resident)")
		cacheBlks = flag.Int("cache-blocks", 0, "disk backend block-cache budget in blocks of -block bytes (0 picks the default); resident adjacency is capped at cache-blocks*block bytes however large the graph")
		shards    = flag.Int("shards", 1, "writers per graph: >= 2 shards every opened graph across that many parallel writers (plus a cut session for cross-shard edges); 1 keeps the single-writer engine")
		parter    = flag.String("partitioner", "hash", "node partitioner for sharded graphs: hash, range, or ldg (locality-aware streaming assignment; shrinks the cross-shard edge ratio on clustered graphs)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the serving mux (see `make profile`); leave off in production")
		dataDir   = flag.String("data-dir", "", "durability directory: every graph gets a write-ahead log and checkpoints under <dir>/<name>/, and a restart with the same -data-dir recovers all graphs (checkpoint + WAL replay) before opening any -graph/-load path anew")
		fsyncPol  = flag.String("fsync", "interval", "WAL sync policy with -data-dir: always (fsync every batch), interval (background fsync; a crash may lose the last unsynced batches), never (fsync only at checkpoints/shutdown)")
		ckptEvery = flag.Duration("checkpoint-every", 5*time.Minute, "periodic checkpoint interval with -data-dir (0 disables periodic checkpoints; one is still taken at startup and on clean shutdown)")
		follow    = flag.String("follow", "", "leader base URL (http://host:port): run as a read replica of the leader's default graph instead of opening any graph locally; incompatible with -graph/-load")
	)
	extra := make(map[string]string)
	flag.Func("load", "additional graph as name=path (repeatable)", func(s string) error {
		name, path, ok := strings.Cut(s, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", s)
		}
		if _, dup := extra[name]; dup {
			return fmt.Errorf("graph %q loaded twice", name)
		}
		extra[name] = path
		return nil
	})
	flag.Parse()
	if *follow != "" && (*graphBase != "" || len(extra) > 0) {
		fmt.Fprintln(os.Stderr, "kcored: -follow replicates the leader's graph; drop -graph/-load")
		os.Exit(2)
	}
	if *follow == "" && *graphBase == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "kcored: -graph is required (or -data-dir with recoverable graphs, or -follow)")
		os.Exit(2)
	}

	opts := engine.Options{
		Serve: serve.Options{
			MaxBatch:      *batch,
			FlushInterval: *flush,
			QueueCapacity: *queueCap,
			ApplyWorkers:  *applyW,
		},
		Open: kcore.OpenOptions{BlockSize: *blockSize},
	}
	if *dataDir != "" && *follow == "" {
		// A follower keeps no WAL of its own: -data-dir only names its
		// checkpoint working directory below.
		policy, err := wal.ParseSyncPolicy(*fsyncPol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcored: -fsync: %v\n", err)
			os.Exit(2)
		}
		opts.Durability = &engine.DurabilityOptions{
			Dir:             *dataDir,
			Policy:          policy,
			CheckpointEvery: *ckptEvery,
		}
	}
	reg := engine.NewRegistry(&opts)
	defer reg.Close()

	recovered := make(map[string]engine.GraphRecovery)
	if opts.Durability != nil {
		rep, err := reg.Recover()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kcored: %s\n", rep.Summary())
		for _, g := range rep.Graphs {
			if g.Err != nil {
				fmt.Fprintf(os.Stderr, "kcored: graph %q unrecoverable: %v\n", g.Name, g.Err)
				continue
			}
			recovered[g.Name] = g
			if g.Degraded {
				fmt.Printf("kcored: graph %q recovered DEGRADED (read-only): %s\n", g.Name, g.Reason)
			}
		}
	}

	// open decomposes a base path under name unless recovery already
	// brought that name up from a checkpoint at least as fresh as the
	// base file. A base modified after the recovered checkpoint means the
	// operator refreshed the data: the stale recovered graph (and its
	// durable dir) is dropped and the base re-decomposed.
	open := func(name, path string) {
		if gr, ok := recovered[name]; ok {
			if !engine.BaseNewerThanCheckpoint(path, gr) {
				fmt.Printf("kcored: graph %q already recovered from %s, skipping base %s\n", name, *dataDir, path)
				return
			}
			fmt.Printf("kcored: graph %q base %s is newer than its recovered checkpoint, re-decomposing\n", name, path)
			if err := reg.Drop(name); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("kcored: decomposing %s (graph %q)\n", path, name)
		if _, err := reg.OpenBackend(name, path, engine.BackendConfig{
			Backend:     *backend,
			Shards:      *shards,
			Partitioner: *parter,
			CacheBlocks: *cacheBlks,
		}); err != nil {
			fatal(err)
		}
	}
	if *graphBase != "" {
		open(DefaultGraph, *graphBase)
	}
	for name, path := range extra {
		open(name, path)
	}

	if *follow != "" {
		fmt.Printf("kcored: following %s (graph %q)\n", *follow, DefaultGraph)
		f, err := replica.New(replica.Options{
			Leader: *follow,
			Graph:  DefaultGraph,
			Dir:    *dataDir,
			Serve:  opts.Serve,
			Open:   opts.Open,
		})
		if err != nil {
			fatal(err)
		}
		// The registry takes ownership: its deferred Close stops the
		// follower's stream loop and removes the bootstrap dir.
		if err := reg.Register(DefaultGraph, f); err != nil {
			f.Close() //nolint:errcheck // register error wins
			fatal(err)
		}
	}
	eng, ok := reg.Get(DefaultGraph)
	if !ok {
		fatal(fmt.Errorf("no default graph: pass -graph, or a -data-dir containing a recovered %q graph", DefaultGraph))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	var handler http.Handler = httpapi.New(reg, DefaultGraph)
	if *pprofOn {
		// Opt-in profiling: mount the pprof handlers next to the API so
		// the publish path (and anything else) can be profiled in place
		// with `go tool pprof http://addr/debug/pprof/profile`.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("kcored: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	// The resolved address is printed (and flushed) before serving so
	// harnesses using port 0 can discover the endpoint.
	fmt.Printf("kcored: listening on http://%s (%d graphs, kmax %d, epoch %d)\n",
		ln.Addr(), len(reg.Names()), eng.Snapshot().Kmax, eng.Snapshot().Seq)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sigc:
		fmt.Printf("kcored: %v, shutting down\n", s)
		// Drain in-flight requests (a /update?wait=1 caller should get
		// its response) before the deferred registry teardown closes
		// every engine and graph.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		if opts.Durability != nil {
			fmt.Println("kcored: syncing and checkpointing graphs")
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kcored: %v\n", err)
	os.Exit(1)
}
