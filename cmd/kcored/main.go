// Command kcored serves core-decomposition queries over HTTP while edge
// updates stream in. It opens an on-disk graph, decomposes it once with
// SemiCore*, and then serves every read from immutable epoch snapshots
// (internal/serve): queries never block on updates, and updates are
// coalesced into batches maintained incrementally with SemiInsert*/
// SemiDelete*.
//
// Usage:
//
//	kcored -graph /data/twitter -addr :8080
//
// Endpoints:
//
//	GET  /healthz              liveness
//	GET  /core?v=7             core number of node 7
//	GET  /kcore?k=3&limit=100  nodes of the 3-core (limit 0 = all)
//	GET  /degeneracy           kmax and k-core size profile
//	GET  /stats                serving and I/O counters
//	POST /update[?wait=1]      {"updates":[{"op":"insert","u":1,"v":2},...]}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"kcore"
	"kcore/internal/serve"
)

func main() {
	var (
		graphBase = flag.String("graph", "", "graph path prefix (required)")
		addr      = flag.String("addr", "127.0.0.1:7171", "listen address (port 0 picks a free port)")
		batch     = flag.Int("batch", 256, "max updates coalesced into one batch")
		flush     = flag.Duration("flush", 2*time.Millisecond, "max delay before pending updates are applied")
		queueCap  = flag.Int("queue", 4096, "ingest queue capacity (enqueue blocks when full)")
		blockSize = flag.Int("block", 4096, "I/O accounting block size B")
	)
	flag.Parse()
	if *graphBase == "" {
		fmt.Fprintln(os.Stderr, "kcored: -graph is required")
		os.Exit(2)
	}
	g, err := kcore.Open(*graphBase, &kcore.OpenOptions{BlockSize: *blockSize})
	if err != nil {
		fatal(err)
	}
	defer g.Close()

	fmt.Printf("kcored: decomposing %s (%d nodes, %d edges)\n", *graphBase, g.NumNodes(), g.NumEdges())
	sess, err := serve.New(g, &serve.Options{
		MaxBatch:      *batch,
		FlushInterval: *flush,
		QueueCapacity: *queueCap,
	})
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: newServer(sess)}
	// The resolved address is printed (and flushed) before serving so
	// harnesses using port 0 can discover the endpoint.
	fmt.Printf("kcored: listening on http://%s (kmax %d, epoch %d)\n",
		ln.Addr(), sess.Snapshot().Kmax, sess.Snapshot().Seq)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sigc:
		fmt.Printf("kcored: %v, shutting down\n", s)
		// Drain in-flight requests (a /update?wait=1 caller should get
		// its response) before the deferred session/graph teardown.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kcored: %v\n", err)
	os.Exit(1)
}

// server adapts a ConcurrentSession to HTTP/JSON.
type server struct {
	sess *serve.ConcurrentSession
	mux  *http.ServeMux
}

func newServer(sess *serve.ConcurrentSession) http.Handler {
	s := &server{sess: sess, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /core", s.handleCore)
	s.mux.HandleFunc("GET /kcore", s.handleKCore)
	s.mux.HandleFunc("GET /degeneracy", s.handleDegeneracy)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	return s.mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// uintParam parses a required uint32 query parameter.
func uintParam(r *http.Request, name string) (uint32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	x, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: not a uint32", name, raw)
	}
	return uint32(x), nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": s.sess.Snapshot().Seq})
}

func (s *server) handleCore(w http.ResponseWriter, r *http.Request) {
	v, err := uintParam(r, "v")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := s.sess.Snapshot()
	c, err := snap.CoreOf(v)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": v, "core": c, "epoch": snap.Seq})
}

func (s *server) handleKCore(w http.ResponseWriter, r *http.Request) {
	k, err := uintParam(r, "k")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		if limit, err = strconv.Atoi(raw); err != nil || limit < 0 {
			httpError(w, http.StatusBadRequest, "bad limit=%q", raw)
			return
		}
	}
	snap := s.sess.Snapshot()
	nodes := snap.KCore(k)
	count := len(nodes)
	if limit > 0 && count > limit {
		nodes = nodes[:limit]
	}
	if nodes == nil {
		nodes = []uint32{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"k": k, "count": count, "nodes": nodes, "epoch": snap.Seq,
	})
}

func (s *server) handleDegeneracy(w http.ResponseWriter, r *http.Request) {
	snap := s.sess.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"degeneracy": snap.Kmax,
		"nodes":      snap.NumNodes(),
		"edges":      snap.NumEdges,
		"core_sizes": snap.Sizes(),
		"epoch":      snap.Seq,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.sess.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"serve":   s.sess.Stats(),
		"io":      s.sess.IOStats(),
		"epoch":   snap.Seq,
		"applied": snap.Applied,
		"nodes":   snap.NumNodes(),
		"edges":   snap.NumEdges,
	})
}

// updateRequest is the body of POST /update.
type updateRequest struct {
	Updates []updateJSON `json:"updates"`
}

type updateJSON struct {
	Op string `json:"op"`
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	ups := make([]serve.Update, len(req.Updates))
	for i, u := range req.Updates {
		switch u.Op {
		case "insert":
			ups[i] = serve.Update{Op: serve.OpInsert, U: u.U, V: u.V}
		case "delete":
			ups[i] = serve.Update{Op: serve.OpDelete, U: u.U, V: u.V}
		default:
			httpError(w, http.StatusBadRequest, "bad op %q (want insert or delete)", u.Op)
			return
		}
	}
	wait := r.URL.Query().Get("wait") != ""
	var err error
	if wait {
		err = s.sess.Apply(ups...)
	} else {
		err = s.sess.Enqueue(ups...)
	}
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	status := http.StatusAccepted
	if wait {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"enqueued": len(ups),
		"waited":   wait,
		"epoch":    s.sess.Snapshot().Seq,
	})
}
