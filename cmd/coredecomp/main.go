// Command coredecomp runs a core decomposition algorithm over an on-disk
// graph and reports the result statistics (kmax, histogram head, time,
// model memory, block I/O).
//
// Usage:
//
//	coredecomp -graph /data/twitter -algo star
//	coredecomp -graph /data/twitter -algo emcore -block 4096
//	coredecomp -graph /data/twitter -build edges.txt   # build first
package main

import (
	"flag"
	"fmt"
	"os"

	"kcore"
	"kcore/internal/stats"
)

func main() {
	var (
		graphBase = flag.String("graph", "", "graph path prefix (required)")
		algoName  = flag.String("algo", "star", "algorithm: star, plus, basic, emcore, imcore")
		blockSize = flag.Int("block", 4096, "I/O accounting block size B")
		buildFrom = flag.String("build", "", "build the graph from this text edge list first")
		coresOut  = flag.String("cores", "", "write 'node core' lines to this file")
		histTop   = flag.Int("hist", 10, "print the k-core size for the top-k levels")
	)
	flag.Parse()
	if *graphBase == "" {
		fmt.Fprintln(os.Stderr, "coredecomp: -graph is required")
		os.Exit(2)
	}
	if *buildFrom != "" {
		if err := kcore.Build(*graphBase, kcore.FileEdges(*buildFrom), nil); err != nil {
			fatal(err)
		}
	}
	algos := map[string]kcore.Algorithm{
		"star": kcore.SemiCoreStar, "plus": kcore.SemiCorePlus, "basic": kcore.SemiCoreBasic,
		"emcore": kcore.EMCore, "imcore": kcore.IMCore,
	}
	algo, ok := algos[*algoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "coredecomp: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	g, err := kcore.Open(*graphBase, &kcore.OpenOptions{BlockSize: *blockSize})
	if err != nil {
		fatal(err)
	}
	defer g.Close()
	fmt.Printf("graph: %s (%d nodes, %d edges)\n", *graphBase, g.NumNodes(), g.NumEdges())

	res, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: algo})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm:         %s\n", res.Info.Algorithm)
	fmt.Printf("kmax (degeneracy): %d\n", res.Kmax)
	fmt.Printf("iterations:        %d\n", res.Info.Iterations)
	fmt.Printf("node computations: %d\n", res.Info.NodeComputations)
	fmt.Printf("time:              %v\n", res.Info.Duration)
	fmt.Printf("model memory:      %s\n", stats.FormatBytes(res.Info.MemPeakBytes))
	fmt.Printf("read I/O:          %d blocks (B=%d)\n", res.Info.IO.Reads, res.Info.IO.BlockSize)
	fmt.Printf("write I/O:         %d blocks\n", res.Info.IO.Writes)

	sizes := kcore.CoreSizes(res.Core)
	fmt.Printf("k-core sizes (top %d levels):\n", *histTop)
	lo := len(sizes) - *histTop
	if lo < 0 {
		lo = 0
	}
	for k := len(sizes) - 1; k >= lo; k-- {
		fmt.Printf("  %d-core: %d nodes\n", k, sizes[k])
	}

	if *coresOut != "" {
		f, err := os.Create(*coresOut)
		if err != nil {
			fatal(err)
		}
		for v, c := range res.Core {
			fmt.Fprintf(f, "%d %d\n", v, c)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("cores written to %s\n", *coresOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "coredecomp: %v\n", err)
	os.Exit(1)
}
