// Command coremaint measures incremental core maintenance on an on-disk
// graph: it removes k random existing edges one by one, then re-inserts
// them, reporting per-operation averages for the selected insertion
// algorithm and SemiDelete* — the paper's Fig. 10 protocol.
//
// Usage:
//
//	coremaint -graph /data/twitter -edges 100 -insert star
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"kcore"
)

func main() {
	var (
		graphBase = flag.String("graph", "", "graph path prefix (required)")
		edges     = flag.Int("edges", 100, "number of random edges to delete and re-insert")
		insName   = flag.String("insert", "star", "insertion algorithm: star (SemiInsert*) or twophase (SemiInsert)")
		blockSize = flag.Int("block", 4096, "I/O accounting block size B")
		seed      = flag.Int64("seed", 1, "random seed for edge selection")
	)
	flag.Parse()
	if *graphBase == "" {
		fmt.Fprintln(os.Stderr, "coremaint: -graph is required")
		os.Exit(2)
	}
	insert := kcore.SemiInsertStar
	if *insName == "twophase" {
		insert = kcore.SemiInsertTwoPhase
	} else if *insName != "star" {
		fmt.Fprintf(os.Stderr, "coremaint: unknown insertion algorithm %q\n", *insName)
		os.Exit(2)
	}

	g, err := kcore.Open(*graphBase, &kcore.OpenOptions{BlockSize: *blockSize})
	if err != nil {
		fatal(err)
	}
	defer g.Close()
	fmt.Printf("graph: %s (%d nodes, %d edges)\n", *graphBase, g.NumNodes(), g.NumEdges())

	// Pick k random existing edges via one sequential scan + reservoir
	// sampling, so selection is semi-external too.
	r := rand.New(rand.NewSource(*seed))
	sample := make([]kcore.Edge, 0, *edges)
	var seen int64
	err = g.VisitEdges(func(u, v uint32) error {
		seen++
		if len(sample) < *edges {
			sample = append(sample, kcore.Edge{U: u, V: v})
		} else if j := r.Int63n(seen); j < int64(*edges) {
			sample[j] = kcore.Edge{U: u, V: v}
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("selected %d random edges\n", len(sample))

	m, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{Insert: insert})
	if err != nil {
		fatal(err)
	}

	report := func(op string, total time.Duration, io int64, comps int64, n int) {
		if n == 0 {
			return
		}
		fmt.Printf("%-12s avg time %-12v avg I/O %-8.1f avg node comps %.1f\n",
			op, total/time.Duration(n), float64(io)/float64(n), float64(comps)/float64(n))
	}

	var delTime time.Duration
	var delIO, delComps int64
	for _, e := range sample {
		info, err := m.DeleteEdge(e.U, e.V)
		if err != nil {
			fatal(err)
		}
		delTime += info.Duration
		delIO += info.IO.Total()
		delComps += info.NodeComputations
	}
	report("SemiDelete*", delTime, delIO, delComps, len(sample))

	var insTime time.Duration
	var insIO, insComps int64
	for _, e := range sample {
		info, err := m.InsertEdge(e.U, e.V)
		if err != nil {
			fatal(err)
		}
		insTime += info.Duration
		insIO += info.IO.Total()
		insComps += info.NodeComputations
	}
	report(insert.String(), insTime, insIO, insComps, len(sample))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "coremaint: %v\n", err)
	os.Exit(1)
}
