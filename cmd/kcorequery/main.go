// Command kcorequery answers k-core questions about an on-disk graph,
// reusing a saved decomposition snapshot when available (decompose once,
// query forever — the workflow the paper's maintenance section enables).
//
// Usage:
//
//	kcorequery -graph /data/web -snapshot /data/web.snap hist
//	kcorequery -graph /data/web core 42          # core number of node 42
//	kcorequery -graph /data/web nodes 10         # members of the 10-core
//	kcorequery -graph /data/web densest          # best-density core
//	kcorequery -graph /data/web clique           # greedy max clique
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"kcore"
)

func main() {
	var (
		graphBase = flag.String("graph", "", "graph path prefix (required)")
		snapshot  = flag.String("snapshot", "", "decomposition snapshot to reuse (created if absent)")
	)
	flag.Parse()
	if *graphBase == "" || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kcorequery -graph BASE [-snapshot FILE] <hist|core V|nodes K|densest|clique>")
		os.Exit(2)
	}

	g, err := kcore.Open(*graphBase, nil)
	if err != nil {
		fatal(err)
	}
	defer g.Close()

	res, err := obtainResult(g, *snapshot)
	if err != nil {
		fatal(err)
	}

	switch flag.Arg(0) {
	case "hist":
		hist := kcore.CoreHistogram(res.Core)
		sizes := kcore.CoreSizes(res.Core)
		fmt.Printf("kmax = %d\n", res.Kmax)
		for k := range hist {
			if hist[k] != 0 {
				fmt.Printf("core %3d: %8d nodes (k-core size %d)\n", k, hist[k], sizes[k])
			}
		}
	case "core":
		v, err := argUint(1)
		if err != nil {
			fatal(err)
		}
		if v >= uint64(g.NumNodes()) {
			fatal(fmt.Errorf("node %d out of range [0,%d)", v, g.NumNodes()))
		}
		fmt.Printf("core(%d) = %d\n", v, res.Core[v])
	case "nodes":
		k, err := argUint(1)
		if err != nil {
			fatal(err)
		}
		nodes := kcore.KCoreNodes(res.Core, uint32(k))
		fmt.Printf("%d-core: %d nodes\n", k, len(nodes))
		for i, v := range nodes {
			if i == 50 {
				fmt.Printf("... (%d more)\n", len(nodes)-50)
				break
			}
			fmt.Println(v)
		}
	case "densest":
		k, density, err := g.DensestCore(res.Core)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("densest core: k=%d, density |E|/|V| = %.3f, %d nodes\n",
			k, density, len(kcore.KCoreNodes(res.Core, k)))
	case "clique":
		clique, err := g.ApproxMaxClique(res.Core)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("greedy clique of size %d: %v\n", len(clique), clique)
	default:
		fatal(fmt.Errorf("unknown query %q", flag.Arg(0)))
	}
}

// obtainResult loads the snapshot if present, otherwise decomposes (and
// saves the snapshot for next time when a path was given).
func obtainResult(g *kcore.Graph, snapshot string) (*kcore.Result, error) {
	if snapshot != "" {
		if res, err := kcore.LoadResult(snapshot, g); err == nil {
			fmt.Fprintf(os.Stderr, "loaded decomposition from %s\n", snapshot)
			return res, nil
		}
	}
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		return nil, err
	}
	if snapshot != "" {
		if err := res.Save(snapshot); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "decomposed and saved snapshot to %s\n", snapshot)
	}
	return res, nil
}

func argUint(i int) (uint64, error) {
	if flag.NArg() <= i {
		return 0, fmt.Errorf("missing argument")
	}
	return strconv.ParseUint(flag.Arg(i), 10, 32)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kcorequery: %v\n", err)
	os.Exit(1)
}
