// Command experiments regenerates the paper's evaluation: Table I and
// Figures 3, 9, 10, 11 and 12, plus the worked-example traces of
// Figures 2-8.
//
// Usage:
//
//	experiments [flags] <experiment>
//
// where <experiment> is one of table1, traces, fig3, fig9small, fig9big,
// fig10small, fig10big, fig11, fig12, or all.
package main

import (
	"flag"
	"fmt"
	"os"

	"kcore/internal/expr"
)

func main() {
	var (
		workDir   = flag.String("workdir", "", "directory for materialised graphs (default: temp)")
		blockSize = flag.Int("block", 4096, "I/O accounting block size B in bytes")
		quick     = flag.Bool("quick", false, "trimmed datasets and sweeps (seconds instead of minutes)")
		edges     = flag.Int("edges", 0, "random edges for maintenance experiments (default 100)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <experiment>\n\nexperiments:\n", os.Args[0])
		for _, e := range expr.Experiments {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.Name, e.Desc)
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n\nflags:\n", "all", "run everything above in order")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := &expr.Config{
		Out:              os.Stdout,
		WorkDir:          *workDir,
		BlockSize:        *blockSize,
		Quick:            *quick,
		MaintenanceEdges: *edges,
	}
	if err := expr.Run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
