module kcore

go 1.24
