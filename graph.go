package kcore

import (
	"fmt"

	"kcore/internal/dyngraph"
	"kcore/internal/graphio"
	"kcore/internal/stats"
)

// EdgeSource streams undirected edges into Build.
type EdgeSource = graphio.EdgeSource

// SliceEdges adapts an in-memory edge slice as an EdgeSource.
func SliceEdges(edges []Edge) EdgeSource { return graphio.SliceSource(edges) }

// FileEdges adapts a whitespace-separated "u v" text file as an
// EdgeSource. Lines starting with '#' or '%' are skipped.
func FileEdges(path string) EdgeSource { return graphio.TextSource{Path: path} }

// BuildOptions tunes graph construction.
type BuildOptions struct {
	// NumNodes forces the node count; 0 derives max id + 1.
	NumNodes uint32
	// SortBudgetArcs bounds the arcs the external sorter holds in memory
	// (the build never materialises the graph); 0 selects a default.
	SortBudgetArcs int
	// TempDir holds external-sort spill runs; empty uses the graph's
	// directory.
	TempDir string
}

// Build converts an edge stream into the on-disk node-table/edge-table
// format at path prefix base (three files: base.meta, base.nt, base.et).
// Edges are symmetrised, external-sorted and deduplicated; self-loops are
// dropped.
func Build(base string, src EdgeSource, opts *BuildOptions) error {
	var o BuildOptions
	if opts != nil {
		o = *opts
	}
	return graphio.Build(base, src, graphio.BuildOptions{
		N:              o.NumNodes,
		SortBudgetArcs: o.SortBudgetArcs,
		TempDir:        o.TempDir,
	})
}

// OpenOptions tunes an opened graph handle.
type OpenOptions struct {
	// BlockSize is the I/O accounting block size B; 0 selects 4096.
	BlockSize int
	// BufferArcs caps the in-memory update buffer before edits are
	// compacted to disk; 0 selects a default.
	BufferArcs int
}

// Graph is a handle to an on-disk graph with a dynamic update overlay.
// All reads and compaction writes are counted at block granularity.
type Graph struct {
	dyn  *dyngraph.Graph
	ctr  *stats.IOCounter
	base string
}

// Open attaches to the graph stored at path prefix base.
func Open(base string, opts *OpenOptions) (*Graph, error) {
	var o OpenOptions
	if opts != nil {
		o = *opts
	}
	ctr := stats.NewIOCounter(o.BlockSize)
	dyn, err := dyngraph.Open(base, ctr, dyngraph.Options{BufferArcs: o.BufferArcs})
	if err != nil {
		return nil, err
	}
	return &Graph{dyn: dyn, ctr: ctr, base: base}, nil
}

// Close releases the underlying files. If no compaction happened during
// the session, buffered edits not flushed with Flush are discarded and
// the on-disk graph is exactly as opened; if automatic compaction already
// rewrote the files, Close flushes the remaining buffer too, so the disk
// state is never torn between old and new edits.
func (g *Graph) Close() error { return g.dyn.Close() }

// Base reports the path prefix the graph was opened from.
func (g *Graph) Base() string { return g.base }

// NumNodes reports n.
func (g *Graph) NumNodes() uint32 { return g.dyn.NumNodes() }

// NumEdges reports the current undirected edge count (disk plus buffered
// edits).
func (g *Graph) NumEdges() int64 { return g.dyn.NumEdges() }

// Neighbors loads the current adjacency list of v (disk merged with
// buffered edits), costing O(1 + deg(v)/B) read I/Os.
func (g *Graph) Neighbors(v uint32) ([]uint32, error) {
	if v >= g.NumNodes() {
		return nil, fmt.Errorf("kcore: node %d out of range [0,%d)", v, g.NumNodes())
	}
	return g.dyn.Neighbors(v, nil)
}

// Degree reports the current degree of v.
func (g *Graph) Degree(v uint32) (uint32, error) {
	if v >= g.NumNodes() {
		return 0, fmt.Errorf("kcore: node %d out of range [0,%d)", v, g.NumNodes())
	}
	return g.dyn.Degree(v)
}

// HasEdge reports whether {u,v} is currently present.
func (g *Graph) HasEdge(u, v uint32) (bool, error) { return g.dyn.HasEdge(u, v) }

// Flush forces buffered edits to be merged into the disk tables.
func (g *Graph) Flush() error { return g.dyn.Compact() }

// IOStats reports the cumulative block I/O performed through this handle.
func (g *Graph) IOStats() IOStats { return ioStatsFrom(g.ctr.Snapshot()) }

// ResetIOStats zeroes the handle's I/O counters (experiment hygiene).
func (g *Graph) ResetIOStats() { g.ctr.Reset() }

// VisitEdges streams every current undirected edge once (u < v) via one
// sequential scan.
func (g *Graph) VisitEdges(fn func(u, v uint32) error) error {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	return g.dyn.Scan(0, n-1, nil, func(v uint32, nbrs []uint32) error {
		for _, u := range nbrs {
			if u > v {
				if err := fn(v, u); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
