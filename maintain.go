package kcore

import (
	"fmt"

	"kcore/internal/maintain"
	"kcore/internal/semicore"
	"kcore/internal/stats"
)

// InsertAlgorithm selects a maintenance strategy for edge insertion.
type InsertAlgorithm int

const (
	// SemiInsertStar is Algorithm 8 (the default): one-phase insertion
	// with node statuses and the speculative cnt* counter.
	SemiInsertStar InsertAlgorithm = iota
	// SemiInsertTwoPhase is Algorithm 7: flood the pure-core candidate
	// set, raise it wholesale, then re-converge.
	SemiInsertTwoPhase
)

// String names the variant as in the paper.
func (a InsertAlgorithm) String() string {
	if a == SemiInsertTwoPhase {
		return "SemiInsert"
	}
	return "SemiInsert*"
}

// MaintainerOptions tunes a maintenance session.
type MaintainerOptions struct {
	// Insert selects the insertion algorithm (default SemiInsertStar).
	Insert InsertAlgorithm
	// FromResult reuses an existing SemiCore* decomposition of this
	// exact graph instead of recomputing one; the Result must come from
	// Decompose with the SemiCoreStar algorithm.
	FromResult *Result
}

// Maintainer keeps the core numbers of a Graph exact across edge
// insertions (SemiInsert/SemiInsert*) and deletions (SemiDelete*). All
// updates go through the graph's buffered overlay; compactions to disk
// happen automatically and are counted as write I/O.
type Maintainer struct {
	g       *Graph
	session *maintain.Session
	insert  InsertAlgorithm
}

// NewMaintainer starts a maintenance session, decomposing the graph with
// SemiCore* first unless opts.FromResult supplies the state.
func NewMaintainer(g *Graph, opts *MaintainerOptions) (*Maintainer, error) {
	var o MaintainerOptions
	if opts != nil {
		o = *opts
	}
	var session *maintain.Session
	if o.FromResult != nil {
		if o.FromResult.cnt == nil {
			return nil, fmt.Errorf("kcore: FromResult must come from the SemiCoreStar algorithm")
		}
		if uint32(len(o.FromResult.Core)) != g.NumNodes() {
			return nil, fmt.Errorf("kcore: FromResult covers %d nodes, graph has %d",
				len(o.FromResult.Core), g.NumNodes())
		}
		st, err := semicore.StateFrom(o.FromResult.Core, o.FromResult.cnt)
		if err != nil {
			return nil, err
		}
		session = maintain.SessionFrom(g.dyn, st)
	} else {
		var err error
		session, err = maintain.NewSession(g.dyn, stats.NewMemModel())
		if err != nil {
			return nil, err
		}
	}
	return &Maintainer{g: g, session: session, insert: o.Insert}, nil
}

// Cores returns the live core-number array. It is valid after every
// operation; callers must copy it if they mutate or retain it across
// operations.
func (m *Maintainer) Cores() []uint32 { return m.session.Core() }

// Cnt returns the live Eq. 2 support counters, aligned with Cores. Like
// Cores it aliases the maintained state: the region-parallel writer
// (internal/serve) wraps both arrays in per-worker semicore states so
// its workers repair the same state the maintainer owns.
func (m *Maintainer) Cnt() []int32 { return m.session.Cnt() }

// ApplyPrepared mutates the graph only — the delete batch then the
// insert batch — leaving core/cnt untouched. It is the graph half of a
// region-scoped batch apply: the caller has already repaired the
// maintained state against an exact in-memory mirror of this graph (the
// region-parallel flush of internal/serve) and asserts every edge is
// valid, so only the authoritative adjacency still has to change. A
// mid-batch failure leaves graph and state inconsistent; the caller
// must treat it as fatal to the session.
func (m *Maintainer) ApplyPrepared(deletes, inserts []Edge) error {
	return m.session.ApplyEdges(deletes, inserts)
}

// CoreOf reports the current core number of v.
func (m *Maintainer) CoreOf(v uint32) (uint32, error) {
	if v >= m.g.NumNodes() {
		return 0, fmt.Errorf("kcore: node %d out of range [0,%d)", v, m.g.NumNodes())
	}
	return m.session.Core()[v], nil
}

// InsertEdge adds {u,v} and incrementally repairs all core numbers.
func (m *Maintainer) InsertEdge(u, v uint32) (RunInfo, error) {
	before := m.g.IOStats()
	var rs stats.RunStats
	var err error
	if m.insert == SemiInsertTwoPhase {
		rs, err = m.session.InsertTwoPhase(u, v)
	} else {
		rs, err = m.session.InsertStar(u, v)
	}
	if err != nil {
		return RunInfo{}, err
	}
	return runInfoFrom(rs, m.g.IOStats().Sub(before)), nil
}

// DeleteEdge removes {u,v} and incrementally repairs all core numbers
// (SemiDelete*).
func (m *Maintainer) DeleteEdge(u, v uint32) (RunInfo, error) {
	before := m.g.IOStats()
	rs, err := m.session.DeleteStar(u, v)
	if err != nil {
		return RunInfo{}, err
	}
	return runInfoFrom(rs, m.g.IOStats().Sub(before)), nil
}

// DeleteEdges removes a batch of edges with a single converge pass —
// cheaper than one DeleteEdge per edge when the batch is large, because
// the affected region is scanned once. The batch is atomic with respect
// to invalid edges: if any edge is absent (or duplicated within the
// batch, which makes its second occurrence absent), the already-removed
// prefix is rolled back and the graph is left unchanged. Note the
// asymmetry with InsertEdges, which applies edge-by-edge and does NOT
// roll back; callers that need all-or-nothing semantics for insertions
// must validate the batch first (as internal/serve does).
func (m *Maintainer) DeleteEdges(edges []Edge) (RunInfo, error) {
	before := m.g.IOStats()
	rs, err := m.session.BatchDelete(edges)
	if err != nil {
		return RunInfo{}, err
	}
	return runInfoFrom(rs, m.g.IOStats().Sub(before)), nil
}

// InsertEdges adds a batch of edges, applying the configured insertion
// algorithm per edge (no sound single-pass shortcut exists for
// insertions; see internal/maintain.BatchInsert). The batch is NOT
// atomic: edges are validated as they are applied, so when a mid-batch
// edge errors (duplicate, self-loop, out-of-range id) the
// already-inserted prefix stays applied — with exact core numbers — and
// the failing edge and everything after it are not. This holds on both
// the SemiInsert* and the two-phase SemiInsert path. Callers needing
// all-or-nothing behaviour must pre-validate the batch against the
// graph (see internal/serve's applyRun) or delete the prefix on error.
func (m *Maintainer) InsertEdges(edges []Edge) (RunInfo, error) {
	if m.insert == SemiInsertTwoPhase {
		var total RunInfo
		total.Algorithm = "SemiInsert (batch)"
		before := m.g.IOStats()
		for _, e := range edges {
			info, err := m.InsertEdge(e.U, e.V)
			if err != nil {
				// The applied prefix's reads and writes happened; the
				// error return must carry them too, or they vanish
				// from the stats.
				total.IO = m.g.IOStats().Sub(before)
				return total, err
			}
			total.Iterations += info.Iterations
			total.NodeComputations += info.NodeComputations
			total.Dirty = append(total.Dirty, info.Dirty...)
			total.Duration += info.Duration
		}
		total.IO = m.g.IOStats().Sub(before)
		return total, nil
	}
	before := m.g.IOStats()
	rs, err := m.session.BatchInsert(edges)
	if err != nil {
		return RunInfo{}, err
	}
	return runInfoFrom(rs, m.g.IOStats().Sub(before)), nil
}
