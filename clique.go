package kcore

import (
	"fmt"
	"sort"
)

// ApproxMaxClique greedily grows a clique inside the deepest cores, the
// classic use of core decomposition as a preprocessing step for clique
// finding (a kmax-clique requires all members to have core >= kmax-1, so
// the search space shrinks to the top cores). The result is a valid
// clique, at least of size 2 on any graph with an edge, and of size
// kmax+1 whenever the kmax-core is a clique; it is a heuristic, not an
// exact solver.
//
// The scan cost is one pass to rank candidates plus one indexed
// neighbour load per accepted or rejected candidate.
func (g *Graph) ApproxMaxClique(core []uint32) ([]uint32, error) {
	if uint32(len(core)) != g.NumNodes() {
		return nil, fmt.Errorf("kcore: core array covers %d nodes, graph has %d", len(core), g.NumNodes())
	}
	if g.NumNodes() == 0 {
		return nil, nil
	}
	// Candidates in decreasing core order; ties by id for determinism.
	order := DegeneracyOrder(core)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	var best []uint32
	// Try a handful of seeds from the deepest shell: greedy from a single
	// seed can get unlucky, and reseeding is cheap.
	seeds := 8
	if seeds > len(order) {
		seeds = len(order)
	}
	for s := 0; s < seeds; s++ {
		clique, err := g.growClique(order, s, core)
		if err != nil {
			return nil, err
		}
		if len(clique) > len(best) {
			best = clique
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best, nil
}

// growClique greedily extends a clique from order[seed], considering
// candidates in deep-core-first order and keeping those adjacent to all
// current members.
func (g *Graph) growClique(order []uint32, seed int, core []uint32) ([]uint32, error) {
	first := order[seed]
	clique := []uint32{first}
	// A node can only be in a clique of size k+1 if its core >= k, so
	// candidates below the current clique size are prunable.
	for i := 0; i < len(order); i++ {
		v := order[i]
		if v == first {
			continue
		}
		if int(core[v]) < len(clique) {
			break // order is core-descending: nothing below can extend
		}
		nbrs, err := g.Neighbors(v)
		if err != nil {
			return nil, err
		}
		adjacentToAll := true
		for _, c := range clique {
			if !containsSorted(nbrs, c) {
				adjacentToAll = false
				break
			}
		}
		if adjacentToAll {
			clique = append(clique, v)
		}
	}
	return clique, nil
}

func containsSorted(l []uint32, x uint32) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= x })
	return i < len(l) && l[i] == x
}
