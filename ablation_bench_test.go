// Ablation benchmarks for the design choices DESIGN.md calls out,
// complementing the per-figure suite in bench_test.go. Run with
// `go test -bench=Ablation -benchmem`.
package kcore_test

import (
	"fmt"
	"testing"

	"kcore/internal/dyngraph"
	"kcore/internal/emcore"
	"kcore/internal/maintain"
	"kcore/internal/memgraph"
	"kcore/internal/semicore"
	"kcore/internal/stats"
	"kcore/internal/storage"
)

// BenchmarkAblationBlockSize measures SemiCore* under different I/O
// accounting block sizes: the algorithm is unchanged, so per-op time
// shifts only with buffer mechanics while the counted I/Os scale ~1/B.
func BenchmarkAblationBlockSize(b *testing.B) {
	base, _ := benchGraph(b, "lj-sim")
	for _, bs := range []int{1024, 4096, 65536} {
		bs := bs
		b.Run(fmt.Sprintf("B=%d", bs), func(b *testing.B) {
			var reads int64
			for i := 0; i < b.N; i++ {
				ctr := stats.NewIOCounter(bs)
				g, err := storage.Open(base, ctr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := semicore.SemiCoreStar(g, nil); err != nil {
					b.Fatal(err)
				}
				g.Close()
				reads = ctr.Reads()
			}
			b.ReportMetric(float64(reads), "readIOs")
		})
	}
}

// BenchmarkAblationEMCoreBudget measures EMCore as its memory budget
// shrinks: rounds multiply and write I/O grows, but the peak load does
// not obey the budget — the paper's critique, as a benchmark.
func BenchmarkAblationEMCoreBudget(b *testing.B) {
	base, csr := benchGraph(b, "lj-sim")
	arcs := csr.NumArcs()
	for _, div := range []int64{16, 4, 1} {
		budget := arcs / div
		b.Run(fmt.Sprintf("budget=arcs_div_%d", div), func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				ctr := stats.NewIOCounter(0)
				g, err := storage.Open(base, ctr)
				if err != nil {
					b.Fatal(err)
				}
				res, err := emcore.Decompose(g, emcore.Options{
					MemoryBudgetArcs: budget,
					TempDir:          b.TempDir(),
					IO:               ctr,
				})
				g.Close()
				if err != nil {
					b.Fatal(err)
				}
				peak = res.PeakLoadedArcs
			}
			b.ReportMetric(float64(peak)/float64(budget), "peak/budget")
		})
	}
}

// BenchmarkAblationBatchDelete compares deleting (and restoring) a batch
// of edges one by one against the single-converge batch extension.
func BenchmarkAblationBatchDelete(b *testing.B) {
	base, csr := benchGraph(b, "lj-sim")
	edges := csr.EdgeList()[:50]
	setup := func(b *testing.B) *maintain.Session {
		b.Helper()
		g, err := dyngraph.Open(base, stats.NewIOCounter(0), dyngraph.Options{BufferArcs: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { g.Close() })
		s, err := maintain.NewSession(g, nil)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("sequential", func(b *testing.B) {
		s := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range edges {
				if _, err := s.DeleteStar(e.U, e.V); err != nil {
					b.Fatal(err)
				}
			}
			restore(b, s, edges)
		}
	})
	b.Run("batch", func(b *testing.B) {
		s := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.BatchDelete(edges); err != nil {
				b.Fatal(err)
			}
			restore(b, s, edges)
		}
	})
}

func restore(b *testing.B, s *maintain.Session, edges []memgraph.Edge) {
	b.Helper()
	b.StopTimer()
	for _, e := range edges {
		if _, err := s.InsertStar(e.U, e.V); err != nil {
			b.Fatal(err)
		}
	}
	b.StartTimer()
}

// BenchmarkAblationLocalCore microbenchmarks one locality-equation
// evaluation (the inner loop every semi-external algorithm shares) on a
// high-degree node.
func BenchmarkAblationLocalCore(b *testing.B) {
	_, csr := benchGraph(b, "orkut-sim")
	// Find the highest-degree node.
	var v uint32
	for u := uint32(0); u < csr.NumNodes(); u++ {
		if csr.Degree(u) > csr.Degree(v) {
			v = u
		}
	}
	res, err := semicore.SemiCoreStar(csr, nil)
	if err != nil {
		b.Fatal(err)
	}
	st, err := semicore.StateFrom(res.Core, res.Cnt)
	if err != nil {
		b.Fatal(err)
	}
	nbrs := csr.Neighbors(v)
	deg := uint32(len(nbrs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := st.LocalCore(deg, nbrs); got == 0 {
			b.Fatal("zero core for hub node")
		}
	}
	b.ReportMetric(float64(deg), "degree")
}
