package kcore

import (
	"fmt"

	"kcore/internal/storage"
)

// ExtractKCore materialises the k-core of g as a new on-disk graph at
// path prefix outBase, semi-externally: one pass over the node ids to
// assign compact labels (O(n) memory) and one sequential edge scan that
// filters and relabels adjacency lists straight into the builder. It
// returns the mapping from new ids to original ids.
//
// Combined with Decompose this implements the paper's problem statement
// output — "the k-cores of G for all 1 <= k <= kmax" — as cheap
// derivatives of one decomposition (Lemma 2.1).
func (g *Graph) ExtractKCore(core []uint32, k uint32, outBase string) ([]uint32, error) {
	if uint32(len(core)) != g.NumNodes() {
		return nil, fmt.Errorf("kcore: core array covers %d nodes, graph has %d", len(core), g.NumNodes())
	}
	n := g.NumNodes()
	remap := make([]int64, n)
	var members []uint32
	for v := uint32(0); v < n; v++ {
		if core[v] >= k {
			remap[v] = int64(len(members))
			members = append(members, v)
		} else {
			remap[v] = -1
		}
	}
	b, err := storage.NewBuilder(outBase, uint32(len(members)), g.ctr)
	if err != nil {
		return nil, err
	}
	var scratch []uint32
	for _, v := range members {
		nbrs, err := g.dyn.Neighbors(v, scratch[:0])
		if err != nil {
			b.Abort()
			return nil, err
		}
		scratch = nbrs[:0]
		filtered := make([]uint32, 0, len(nbrs))
		for _, u := range nbrs {
			if remap[u] >= 0 {
				filtered = append(filtered, uint32(remap[u]))
			}
		}
		if err := b.AppendList(uint32(remap[v]), filtered); err != nil {
			b.Abort()
			return nil, err
		}
	}
	if err := b.Close(); err != nil {
		return nil, err
	}
	return members, nil
}
