// Streaming maintenance: a social graph receives a stream of edge
// insertions and deletions (friendships forming and dissolving) and the
// core numbers are kept exact incrementally with SemiInsert*/SemiDelete*
// instead of recomputation — the paper's Section V use case. The example
// also demonstrates the update buffer flushing to disk (compaction) and
// compares incremental cost against decomposition from scratch.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"kcore"
	"kcore/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "kcore-dynamic")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "stream")

	edges := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 7)
	if err := kcore.Build(base, kcore.SliceEdges(edges), nil); err != nil {
		log.Fatal(err)
	}
	// A small buffer so the stream visibly compacts to disk.
	g, err := kcore.Open(base, &kcore.OpenOptions{BufferArcs: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	start := time.Now()
	m, err := kcore.NewMaintainer(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	initial := time.Since(start)
	fmt.Printf("initial SemiCore* decomposition: %v, kmax=%d\n",
		initial, kcore.Degeneracy(m.Cores()))

	// Stream: random inserts (60%) and deletes of previously inserted
	// edges (40%), like friendships forming and dissolving.
	r := rand.New(rand.NewSource(99))
	n := int(g.NumNodes())
	var inserted []kcore.Edge
	var insTime, delTime time.Duration
	var insOps, delOps int
	var maintIO int64
	for i := 0; i < 2000; {
		var info kcore.RunInfo
		if len(inserted) > 0 && r.Float64() < 0.4 {
			j := r.Intn(len(inserted))
			e := inserted[j]
			inserted[j] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
			var err error
			info, err = m.DeleteEdge(e.U, e.V)
			if err != nil {
				log.Fatal(err)
			}
			delTime += info.Duration
			delOps++
		} else {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if u == v {
				continue
			}
			has, err := g.HasEdge(u, v)
			if err != nil {
				log.Fatal(err)
			}
			if has {
				continue
			}
			info, err = m.InsertEdge(u, v)
			if err != nil {
				log.Fatal(err)
			}
			inserted = append(inserted, kcore.Edge{U: u, V: v})
			insTime += info.Duration
			insOps++
		}
		maintIO += info.IO.Total()
		i++
	}
	fmt.Printf("stream: %d inserts (avg %v), %d deletes (avg %v), %d block I/Os total\n",
		insOps, insTime/time.Duration(insOps), delOps, delTime/time.Duration(delOps), maintIO)
	fmt.Printf("kmax after stream: %d\n", kcore.Degeneracy(m.Cores()))

	// Flush buffered edits and sanity-check against recomputation.
	if err := g.Flush(); err != nil {
		log.Fatal(err)
	}
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	for v := range res.Core {
		if res.Core[v] != m.Cores()[v] {
			log.Fatalf("mismatch at node %d: incremental %d, recomputed %d",
				v, m.Cores()[v], res.Core[v])
		}
	}
	perOp := (insTime + delTime) / time.Duration(insOps+delOps)
	fmt.Printf("verified: incremental state equals recomputation (%v)\n", res.Info.Duration)
	fmt.Printf("amortised maintenance is %.0fx cheaper than recomputing per update\n",
		float64(res.Info.Duration)/float64(perOp))
}
