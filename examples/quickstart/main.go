// Quickstart: build the paper's Fig. 1 sample graph on disk, decompose it
// with SemiCore*, inspect the k-cores, and replay Example 2.1 (inserting
// edge (v7,v8) lifts core(v8) from 1 to 2) with incremental maintenance.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kcore"
)

func main() {
	dir, err := os.MkdirTemp("", "kcore-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "sample")

	// The running example of the paper (Fig. 1): 9 nodes, 15 edges.
	edges := []kcore.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3},
		{U: 2, V: 3}, {U: 2, V: 4},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 3, V: 6},
		{U: 4, V: 5},
		{U: 5, V: 6}, {U: 5, V: 7}, {U: 5, V: 8},
		{U: 6, V: 7},
	}
	if err := kcore.Build(base, kcore.SliceEdges(edges), nil); err != nil {
		log.Fatal(err)
	}

	g, err := kcore.Open(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	res, err := kcore.Decompose(g, nil) // SemiCore*, the paper's best
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core numbers: %v\n", res.Core)
	fmt.Printf("degeneracy (kmax): %d\n", res.Kmax)
	fmt.Printf("3-core nodes: %v (the K4 of Fig. 1)\n", kcore.KCoreNodes(res.Core, 3))
	fmt.Printf("ran %s in %d iterations, %d node computations, %d read I/Os\n",
		res.Info.Algorithm, res.Info.Iterations, res.Info.NodeComputations, res.Info.IO.Reads)

	// Incremental maintenance (Example 2.1).
	m, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{FromResult: res})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.InsertEdge(7, 8); err != nil {
		log.Fatal(err)
	}
	c8, _ := m.CoreOf(8)
	fmt.Printf("after inserting (v7,v8): core(v8) = %d (was 1)\n", c8)
	if _, err := m.DeleteEdge(7, 8); err != nil {
		log.Fatal(err)
	}
	c8, _ = m.CoreOf(8)
	fmt.Printf("after deleting it again: core(v8) = %d\n", c8)
}
