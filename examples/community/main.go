// Community detection on a social network: core decomposition is the
// standard first cut for finding dense communities (the paper's
// motivating applications include community detection and dense subgraph
// discovery). This example generates a collaboration-style graph with
// planted cliques, decomposes it semi-externally, and extracts the
// densest core as the community backbone.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kcore"
	"kcore/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "kcore-community")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "social")

	// A DBLP-like collaboration network: preferential attachment plus
	// planted cliques (research groups).
	edges := gen.Social(20000, 3, 120, 14, 42)
	if err := kcore.Build(base, kcore.SliceEdges(edges), nil); err != nil {
		log.Fatal(err)
	}
	g, err := kcore.Open(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("social graph: %d nodes, %d edges on disk\n", g.NumNodes(), g.NumEdges())

	res, err := kcore.Decompose(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degeneracy: %d (decomposed in %v, %d read I/Os, %s memory)\n",
		res.Kmax, res.Info.Duration, res.Info.IO.Reads, fmtMiB(res.Info.MemPeakBytes))

	// The k-core size profile: communities appear as the deep cores.
	sizes := kcore.CoreSizes(res.Core)
	fmt.Println("k-core sizes:")
	for k := int(res.Kmax); k >= 0 && k > int(res.Kmax)-5; k-- {
		fmt.Printf("  %2d-core: %5d nodes\n", k, sizes[k])
	}

	// Densest-core extraction: the best |E|/|V| core is the community
	// backbone the planted cliques form.
	k, density, err := g.DensestCore(res.Core)
	if err != nil {
		log.Fatal(err)
	}
	backbone, err := g.KCoreSubgraph(res.Core, k)
	if err != nil {
		log.Fatal(err)
	}
	members := kcore.KCoreNodes(res.Core, k)
	fmt.Printf("densest core: k=%d with %d nodes, %d edges (density %.2f)\n",
		k, len(members), len(backbone), density)

	// Degeneracy ordering: processing nodes low-core-first bounds later
	// neighbours by kmax — the preprocessing step clique finders rely on.
	order := kcore.DegeneracyOrder(res.Core)
	fmt.Printf("degeneracy order: first node %d (core %d), last node %d (core %d)\n",
		order[0], res.Core[order[0]], order[len(order)-1], res.Core[order[len(order)-1]])
}

func fmtMiB(b int64) string {
	return fmt.Sprintf("%.1f KiB", float64(b)/1024)
}
