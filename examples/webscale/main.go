// Web-scale pipeline: the full semi-external workflow the paper targets —
// a web-crawl-shaped graph too awkward to hold as adjacency lists in
// memory is built from an unsorted edge stream with a bounded-memory
// external sort, then decomposed with all three SemiCore variants so the
// I/O and node-computation gaps of Fig. 9 are visible, with the explicit
// O(n) memory ledger that lets the paper process a 42.6-billion-edge
// graph in 4.2 GB.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kcore"
	"kcore/internal/gen"
	"kcore/internal/stats"
)

func main() {
	dir, err := os.MkdirTemp("", "kcore-webscale")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "crawl")

	// A UK-like crawl: dense RMAT core plus long chain appendages (the
	// structure that gives the paper's web graphs their thousands of
	// fixpoint iterations).
	edges := gen.WebGraph(15, 10, 60, 250, 2016)
	fmt.Printf("generated %d raw edges\n", len(edges))

	// Build with a deliberately tiny sort budget: the builder spills
	// sorted runs to disk and merges them, so peak memory stays bounded
	// no matter how large the input stream is.
	err = kcore.Build(base, kcore.SliceEdges(edges), &kcore.BuildOptions{
		SortBudgetArcs: 64 << 10,
		TempDir:        dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := kcore.Open(base, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Printf("on disk: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	fmt.Printf("%-10s %10s %12s %10s %12s %10s\n",
		"algorithm", "time", "iterations", "comps", "read I/O", "memory")
	for _, algo := range []kcore.Algorithm{kcore.SemiCoreStar, kcore.SemiCorePlus, kcore.SemiCoreBasic} {
		res, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10v %12d %10d %12d %10s\n",
			res.Info.Algorithm, res.Info.Duration.Round(1000),
			res.Info.Iterations, res.Info.NodeComputations,
			res.Info.IO.Reads, stats.FormatBytes(res.Info.MemPeakBytes))
	}

	res, err := kcore.Decompose(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkmax = %d; 2-core holds %d of %d nodes (chains), deep cores are the crawl's dense center\n",
		res.Kmax, kcore.CoreSizes(res.Core)[2], g.NumNodes())
	fmt.Println("note: SemiCore pays a full edge scan per iteration; SemiCore* touches only changing nodes — the paper's headline gap.")
}
