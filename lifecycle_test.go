package kcore_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"kcore"
	"kcore/internal/gen"
)

// TestEndToEndLifecycle exercises the full operational story a downstream
// user runs: build from an edge stream with a tiny sort budget, decompose,
// snapshot the state, maintain through a churn that forces buffer
// compactions, flush, restart from the snapshot's lineage, and reconcile
// everything against recomputation.
func TestEndToEndLifecycle(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "g")
	edges := gen.WebGraph(9, 5, 8, 30, 777)
	err := kcore.Build(base, kcore.SliceEdges(edges), &kcore.BuildOptions{
		SortBudgetArcs: 512, // force external-sort spills
		TempDir:        dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	g, err := kcore.Open(base, &kcore.OpenOptions{BufferArcs: 128})
	if err != nil {
		t.Fatal(err)
	}
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "state.snap")
	if err := res.Save(snap); err != nil {
		t.Fatal(err)
	}

	// Resume from snapshot (as a restarted process would).
	loaded, err := kcore.LoadResult(snap, g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kmax != res.Kmax {
		t.Fatalf("snapshot kmax %d, want %d", loaded.Kmax, res.Kmax)
	}
	m, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{FromResult: loaded})
	if err != nil {
		t.Fatal(err)
	}

	// Churn: inserts and deletes, small buffer so compactions trigger.
	r := rand.New(rand.NewSource(778))
	n := int(g.NumNodes())
	var live []kcore.Edge
	for i := 0; i < 150; i++ {
		if len(live) > 0 && r.Float64() < 0.4 {
			j := r.Intn(len(live))
			e := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if _, err := m.DeleteEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			continue
		}
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		if u == v {
			continue
		}
		if has, _ := g.HasEdge(u, v); has {
			continue
		}
		if _, err := m.InsertEdge(u, v); err != nil {
			t.Fatal(err)
		}
		live = append(live, kcore.Edge{U: u, V: v})
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.IOStats().Writes == 0 {
		t.Fatal("no write I/O despite compactions and flush")
	}

	// A batch deletion of the remaining churn edges, then reconcile.
	if len(live) > 3 {
		batch := live[:3]
		live = live[3:]
		if _, err := m.DeleteEdges(batch); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fresh.Core {
		if fresh.Core[v] != m.Cores()[v] {
			t.Fatalf("node %d: maintained %d, recomputed %d", v, m.Cores()[v], fresh.Core[v])
		}
	}

	// Snapshot of the maintained state resumes too: save the *current*
	// decomposition and reload it.
	snap2 := filepath.Join(dir, "state2.snap")
	if err := fresh.Save(snap2); err != nil {
		t.Fatal(err)
	}
	again, err := kcore.LoadResult(snap2, g)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{FromResult: again})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) > 0 {
		e := live[0]
		if _, err := m2.DeleteEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.InsertEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	for v := range fresh.Core {
		if m2.Cores()[v] != fresh.Core[v] {
			t.Fatalf("resumed maintainer diverged at %d", v)
		}
	}
}

// TestBatchAPIsPublic covers DeleteEdges/InsertEdges through the public
// surface.
func TestBatchAPIsPublic(t *testing.T) {
	g := buildSample(t)
	m, err := kcore.NewMaintainer(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []kcore.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	info, err := m.DeleteEdges(batch)
	if err != nil {
		t.Fatal(err)
	}
	if info.Algorithm != "SemiDeleteBatch*" {
		t.Fatalf("algorithm = %q", info.Algorithm)
	}
	if _, err := m.InsertEdges(batch); err != nil {
		t.Fatal(err)
	}
	// Back to the original assignment.
	want := []uint32{3, 3, 3, 3, 2, 2, 2, 2, 1}
	for v, w := range want {
		if m.Cores()[v] != w {
			t.Fatalf("core(v%d) = %d after round trip, want %d", v, m.Cores()[v], w)
		}
	}
	// Batch with an absent edge fails atomically.
	if _, err := m.DeleteEdges([]kcore.Edge{{U: 0, V: 1}, {U: 7, V: 8}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if has, _ := g.HasEdge(0, 1); !has {
		t.Fatal("failed batch not rolled back")
	}
}

// TestSnapshotPublicValidation covers the error paths of Save/LoadResult.
func TestSnapshotPublicValidation(t *testing.T) {
	g := buildSample(t)
	res, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: kcore.SemiCoreBasic})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Save(filepath.Join(t.TempDir(), "x.snap")); err == nil {
		t.Fatal("non-star result saved")
	}
	star, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := star.Save(path); err != nil {
		t.Fatal(err)
	}
	// Mismatched graph size must be rejected.
	other := buildFrom(t, []kcore.Edge{{U: 0, V: 1}}, 2)
	if _, err := kcore.LoadResult(path, other); err == nil {
		t.Fatal("snapshot loaded onto wrong-sized graph")
	}
}

// TestExtractKCore materialises the 3-core of the sample graph (the K4)
// as a new on-disk graph and validates it end to end.
func TestExtractKCore(t *testing.T) {
	g := buildSample(t)
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "core3")
	members, err := g.ExtractKCore(res.Core, 3, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("members = %v, want the K4", members)
	}
	for i, v := range []uint32{0, 1, 2, 3} {
		if members[i] != v {
			t.Fatalf("members = %v, want [0 1 2 3]", members)
		}
	}
	sub, err := kcore.Open(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.NumNodes() != 4 || sub.NumEdges() != 6 {
		t.Fatalf("subgraph n=%d m=%d, want 4/6", sub.NumNodes(), sub.NumEdges())
	}
	subRes, err := kcore.Decompose(sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range subRes.Core {
		if c != 3 {
			t.Fatalf("K4 core(%d) = %d, want 3", v, c)
		}
	}
	// Mismatched core array is rejected.
	if _, err := g.ExtractKCore([]uint32{1}, 1, out+"x"); err == nil {
		t.Fatal("mismatched core array accepted")
	}
	// k=0 keeps everything.
	out0 := filepath.Join(t.TempDir(), "core0")
	all, err := g.ExtractKCore(res.Core, 0, out0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("0-core members = %d, want 9", len(all))
	}
}
