package kcore_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"kcore"
	"kcore/internal/gen"
	"kcore/internal/verify"
)

// buildSample writes the paper's Fig. 1 graph to disk and opens it.
func buildSample(t *testing.T) *kcore.Graph {
	t.Helper()
	return buildFrom(t, gen.SampleGraphEdges(), 0)
}

func buildFrom(t *testing.T, edges []kcore.Edge, n uint32) *kcore.Graph {
	t.Helper()
	base := filepath.Join(t.TempDir(), "g")
	if err := kcore.Build(base, kcore.SliceEdges(edges), &kcore.BuildOptions{NumNodes: n}); err != nil {
		t.Fatal(err)
	}
	g, err := kcore.Open(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestQuickstartFlow(t *testing.T) {
	g := buildSample(t)
	if g.NumNodes() != 9 || g.NumEdges() != 15 {
		t.Fatalf("n=%d m=%d, want 9/15", g.NumNodes(), g.NumEdges())
	}
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{3, 3, 3, 3, 2, 2, 2, 2, 1}
	for v, w := range want {
		if res.Core[v] != w {
			t.Fatalf("core(v%d) = %d, want %d", v, res.Core[v], w)
		}
	}
	if res.Kmax != 3 {
		t.Fatalf("kmax = %d, want 3", res.Kmax)
	}
	if res.Info.Algorithm != "SemiCore*" {
		t.Fatalf("default algorithm = %q", res.Info.Algorithm)
	}
	if res.Info.IO.Reads == 0 {
		t.Fatal("no read I/O recorded")
	}
	if res.Info.IO.Writes != 0 {
		t.Fatalf("decomposition wrote %d blocks, want 0", res.Info.IO.Writes)
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	edges := gen.Social(400, 3, 12, 9, 201)
	mem := gen.Build(edges)
	want := verify.CoresByRepeatedRemoval(mem)
	g := buildFrom(t, edges, mem.NumNodes())
	for _, algo := range []kcore.Algorithm{
		kcore.SemiCoreStar, kcore.SemiCorePlus, kcore.SemiCoreBasic,
		kcore.EMCore, kcore.IMCore,
	} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			res, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: algo, TempDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if res.Core[v] != want[v] {
					t.Fatalf("%v: core(%d) = %d, want %d", algo, v, res.Core[v], want[v])
				}
			}
		})
	}
}

func TestMaintainerFlow(t *testing.T) {
	g := buildSample(t)
	m, err := kcore.NewMaintainer(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Example 2.1: inserting (v7,v8) lifts core(v8) to 2.
	if _, err := m.InsertEdge(7, 8); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.CoreOf(8); c != 2 {
		t.Fatalf("core(v8) = %d after insert, want 2", c)
	}
	if _, err := m.DeleteEdge(7, 8); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.CoreOf(8); c != 1 {
		t.Fatalf("core(v8) = %d after delete, want 1", c)
	}
	if _, err := m.InsertEdge(7, 7); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := m.DeleteEdge(7, 8); err == nil {
		t.Fatal("absent delete accepted")
	}
	if _, err := m.CoreOf(99); err == nil {
		t.Fatal("out-of-range CoreOf accepted")
	}
}

func TestMaintainerFromResult(t *testing.T) {
	g := buildSample(t)
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{FromResult: res})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertEdge(7, 8); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.CoreOf(8); c != 2 {
		t.Fatalf("core(v8) = %d, want 2", c)
	}
	// A non-star result must be rejected.
	res2, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: kcore.SemiCoreBasic})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{FromResult: res2}); err == nil {
		t.Fatal("non-star FromResult accepted")
	}
}

func TestMaintainerTwoPhaseVariant(t *testing.T) {
	edges := gen.BarabasiAlbert(150, 3, 203)
	mem := gen.Build(edges)
	g := buildFrom(t, edges, mem.NumNodes())
	m, err := kcore.NewMaintainer(g, &kcore.MaintainerOptions{Insert: kcore.SemiInsertTwoPhase})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(204))
	for i := 0; i < 20; i++ {
		u := uint32(r.Intn(150))
		v := uint32(r.Intn(150))
		if u == v {
			continue
		}
		if has, _ := g.HasEdge(u, v); has {
			continue
		}
		info, err := m.InsertEdge(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if info.Algorithm != "SemiInsert" {
			t.Fatalf("algorithm = %q, want SemiInsert", info.Algorithm)
		}
	}
}

func TestQueries(t *testing.T) {
	core := []uint32{3, 3, 3, 3, 2, 2, 2, 2, 1}
	if kcore.Degeneracy(core) != 3 {
		t.Fatal("degeneracy")
	}
	if got := kcore.KCoreNodes(core, 3); fmt.Sprint(got) != "[0 1 2 3]" {
		t.Fatalf("3-core nodes = %v", got)
	}
	if got := kcore.KCoreNodes(core, 0); len(got) != 9 {
		t.Fatalf("0-core nodes = %v", got)
	}
	h := kcore.CoreHistogram(core)
	if fmt.Sprint(h) != "[0 1 4 4]" {
		t.Fatalf("histogram = %v", h)
	}
	s := kcore.CoreSizes(core)
	if fmt.Sprint(s) != "[9 9 8 4]" {
		t.Fatalf("sizes = %v", s)
	}
	order := kcore.DegeneracyOrder(core)
	if order[0] != 8 || core[order[len(order)-1]] != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := 1; i < len(order); i++ {
		if core[order[i-1]] > core[order[i]] {
			t.Fatal("order not monotone in core number")
		}
	}
}

func TestKCoreSubgraphAndDensestCore(t *testing.T) {
	g := buildSample(t)
	res, err := kcore.Decompose(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := g.KCoreSubgraph(res.Core, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The 3-core of Fig. 1 is the K4 on v0..v3: six edges.
	if len(edges) != 6 {
		t.Fatalf("3-core has %d edges, want 6", len(edges))
	}
	k, density, err := g.DensestCore(res.Core)
	if err != nil {
		t.Fatal(err)
	}
	// The 2-core keeps 14 of the 15 edges over 8 nodes (1.75), beating
	// both the K4 3-core (6/4 = 1.5) and the full graph (15/9).
	if k != 2 || density != 1.75 {
		t.Fatalf("densest core = %d (%.2f), want 2 (1.75)", k, density)
	}
	if _, err := g.KCoreSubgraph([]uint32{1}, 1); err == nil {
		t.Fatal("mismatched core array accepted")
	}
}

func TestFileEdgesAndFlush(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "edges.txt")
	content := "# demo\n0 1\n1 2\n2 0\n"
	if err := writeFile(txt, content); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "g")
	if err := kcore.Build(base, kcore.FileEdges(txt), nil); err != nil {
		t.Fatal(err)
	}
	g, err := kcore.Open(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	m, err := kcore.NewMaintainer(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertEdge(0, 2); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := m.DeleteEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges after flush = %d, want 2", g.NumEdges())
	}
	if got := g.IOStats(); got.Writes == 0 {
		t.Fatal("flush performed no write I/O")
	}
}

// TestEMCoreRequiresFlush pins the guard that EMCore and IMCore see the
// materialised graph, not the overlay.
func TestEMCoreRequiresFlush(t *testing.T) {
	g := buildSample(t)
	m, err := kcore.NewMaintainer(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertEdge(7, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: kcore.EMCore}); err == nil {
		t.Fatal("EMCore ran over an unflushed buffer")
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := kcore.Decompose(g, &kcore.DecomposeOptions{Algorithm: kcore.EMCore, TempDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
