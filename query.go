package kcore

import (
	"fmt"
	"sort"
)

// KCoreNodes returns the nodes of the k-core: by Lemma 2.1 the k-core is
// the subgraph induced by {v : core(v) >= k}, so given a decomposition the
// k-cores for every k fall out by filtering.
func KCoreNodes(core []uint32, k uint32) []uint32 {
	var out []uint32
	for v, c := range core {
		if c >= k {
			out = append(out, uint32(v))
		}
	}
	return out
}

// Degeneracy reports the maximum core number in a decomposition (the
// graph's degeneracy, kmax in the paper).
func Degeneracy(core []uint32) uint32 {
	var k uint32
	for _, c := range core {
		if c > k {
			k = c
		}
	}
	return k
}

// CoreHistogram returns counts[k] = number of nodes with core number k,
// for k in [0, Degeneracy].
func CoreHistogram(core []uint32) []int64 {
	counts := make([]int64, Degeneracy(core)+1)
	for _, c := range core {
		counts[c]++
	}
	return counts
}

// CoreSizes returns sizes[k] = |k-core| (number of nodes with core >= k),
// the cumulative view of CoreHistogram.
func CoreSizes(core []uint32) []int64 {
	h := CoreHistogram(core)
	sizes := make([]int64, len(h))
	var cum int64
	for k := len(h) - 1; k >= 0; k-- {
		cum += h[k]
		sizes[k] = cum
	}
	return sizes
}

// DegeneracyOrder returns the nodes sorted by core number ascending (ties
// by id). Processing nodes in this order guarantees each node has at most
// Degeneracy(core) neighbours later in the order — the standard use of
// core decomposition as a preprocessing step for clique finding and dense
// subgraph discovery.
func DegeneracyOrder(core []uint32) []uint32 {
	order := make([]uint32, len(core))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if core[order[i]] != core[order[j]] {
			return core[order[i]] < core[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// NumNodes reports the number of nodes the snapshot covers.
func (s *CoreSnapshot) NumNodes() uint32 { return s.n }

// CoreOf reports the core number of v at snapshot time.
func (s *CoreSnapshot) CoreOf(v uint32) (uint32, error) {
	if v >= s.n {
		return 0, fmt.Errorf("kcore: node %d out of range [0,%d)", v, s.n)
	}
	return s.CoreAt(v), nil
}

// CoreAt reports the core number of v at snapshot time without a bounds
// check: one chunk-table indirection. v must be < NumNodes().
func (s *CoreSnapshot) CoreAt(v uint32) uint32 {
	return s.chunks[v>>SnapshotChunkShift][v&snapshotChunkMask]
}

// ForEachCore calls fn(v, core(v)) for every node in id order, walking
// the chunks directly — the cheapest full read of a snapshot.
func (s *CoreSnapshot) ForEachCore(fn func(v, c uint32)) {
	v := uint32(0)
	for _, ch := range s.chunks {
		for _, c := range ch {
			fn(v, c)
			v++
		}
	}
}

// Cores materialises the full core array as a freshly allocated copy (an
// O(n) flattening of the shared chunks). Use CoreAt/ForEachCore to read
// without allocating.
func (s *CoreSnapshot) Cores() []uint32 {
	out := make([]uint32, 0, s.n)
	for _, ch := range s.chunks {
		out = append(out, ch...)
	}
	return out
}

// NumChunks reports how many chunks the snapshot stores — the total a
// delta publication's copied-chunk count is measured against.
func (s *CoreSnapshot) NumChunks() int { return len(s.chunks) }

// KCore returns the nodes of the k-core at snapshot time, in id order.
func (s *CoreSnapshot) KCore(k uint32) []uint32 {
	var out []uint32
	s.ForEachCore(func(v, c uint32) {
		if c >= k {
			out = append(out, v)
		}
	})
	return out
}

// Degeneracy reports kmax at snapshot time.
func (s *CoreSnapshot) Degeneracy() uint32 { return s.Kmax }

// Histogram returns counts[k] = number of nodes with core number k. The
// histogram is maintained incrementally across delta snapshots, so this
// is an O(Kmax) copy, not an O(n) scan.
func (s *CoreSnapshot) Histogram() []int64 { return append([]int64(nil), s.hist...) }

// Sizes returns sizes[k] = |k-core| at snapshot time (the cumulative view
// of Histogram, likewise O(Kmax)).
func (s *CoreSnapshot) Sizes() []int64 {
	sizes := make([]int64, len(s.hist))
	var cum int64
	for k := len(s.hist) - 1; k >= 0; k-- {
		cum += s.hist[k]
		sizes[k] = cum
	}
	return sizes
}

// KCoreSubgraph extracts the edges of the k-core via one sequential scan
// of the graph.
func (g *Graph) KCoreSubgraph(core []uint32, k uint32) ([]Edge, error) {
	if uint32(len(core)) != g.NumNodes() {
		return nil, fmt.Errorf("kcore: core array covers %d nodes, graph has %d", len(core), g.NumNodes())
	}
	var edges []Edge
	err := g.VisitEdges(func(u, v uint32) error {
		if core[u] >= k && core[v] >= k {
			edges = append(edges, Edge{U: u, V: v})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return edges, nil
}

// DensestCore returns the k whose k-core has the highest edge density
// |E|/|V| among all non-empty k-cores, with the density; a standard
// approximation routine for densest-subgraph discovery built on the
// decomposition. It costs one sequential edge scan.
func (g *Graph) DensestCore(core []uint32) (k uint32, density float64, err error) {
	if uint32(len(core)) != g.NumNodes() {
		return 0, 0, fmt.Errorf("kcore: core array covers %d nodes, graph has %d", len(core), g.NumNodes())
	}
	kmax := Degeneracy(core)
	edgesAt := make([]int64, kmax+1) // edges whose min endpoint core = k
	err = g.VisitEdges(func(u, v uint32) error {
		c := core[u]
		if core[v] < c {
			c = core[v]
		}
		edgesAt[c]++
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	sizes := CoreSizes(core)
	var cumEdges int64
	best, bestDensity := uint32(0), -1.0
	for kk := int64(kmax); kk >= 0; kk-- {
		cumEdges += edgesAt[kk]
		if sizes[kk] == 0 {
			continue
		}
		d := float64(cumEdges) / float64(sizes[kk])
		if d > bestDensity {
			best, bestDensity = uint32(kk), d
		}
	}
	return best, bestDensity, nil
}
